//! Schedule-space exploration strategies.
//!
//! Everything here is pure bookkeeping over [`Decision`] values and is
//! compiled (and unit-tested) in every build; only the driver that
//! actually runs executions ([`crate::Checker`]) needs the
//! `--cfg solero_mc` runtime.
//!
//! The exhaustive mode is a stateless DFS over schedule prefixes with
//! *iterative context bounding* (Musuvathi & Qadeer): at every thread
//! decision the currently running thread is tried first, and switching
//! away from a still-enabled thread (a *preemption*) is only explored
//! while the per-schedule preemption budget lasts. Most concurrency
//! bugs need very few preemptions, so a small bound covers the
//! interesting schedules at a fraction of the unbounded cost.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, PoisonError};

use solero_sync::model::{AccessSpace, Chooser, Decision, StepRec, MAX_THREADS};
use solero_testkit::TestRng;

/// The options a chooser may take at `d`, in exploration order, given
/// how many preemptions the schedule has already spent.
///
/// * Value decisions: newest store first (the sequentially consistent
///   answer), then increasingly stale candidates.
/// * Thread decisions: the current thread first when it is still
///   enabled; other threads only while the budget lasts. When the
///   current thread cannot continue, every switch is forced (free).
pub fn allowed_options(d: &Decision, preemptions: u32, bound: Option<u32>) -> Vec<u32> {
    match d {
        Decision::Value { candidates } => (0..*candidates).rev().collect(),
        Decision::Thread { current, enabled } => {
            match enabled.iter().position(|&t| t == *current) {
                Some(p) => {
                    let mut opts = vec![p as u32];
                    if bound.map_or(true, |b| preemptions < b) {
                        opts.extend((0..enabled.len() as u32).filter(|&i| i != p as u32));
                    }
                    opts
                }
                None => (0..enabled.len() as u32).collect(),
            }
        }
    }
}

/// True if taking `option` at `d` preempts a thread that could have
/// kept running.
pub fn is_preemption(d: &Decision, option: u32) -> bool {
    match d {
        Decision::Value { .. } => false,
        Decision::Thread { current, enabled } => {
            enabled.contains(current) && enabled[option as usize] != *current
        }
    }
}

struct BranchRec {
    /// Option indices in exploration order (fixed at first visit).
    options: Vec<u32>,
    /// Which of `options` the current execution takes.
    next: usize,
}

/// Persistent state of the exhaustive DFS, shared across executions.
pub struct DfsCore {
    bound: Option<u32>,
    path: Vec<BranchRec>,
    depth: usize,
    preemptions: u32,
    complete: bool,
}

impl DfsCore {
    pub fn new(bound: Option<u32>) -> Self {
        DfsCore {
            bound,
            path: Vec::new(),
            depth: 0,
            preemptions: 0,
            complete: false,
        }
    }

    /// Resets the per-execution cursor. Call before each execution.
    pub fn begin(&mut self) {
        self.depth = 0;
        self.preemptions = 0;
    }

    /// Resolves one decision: replays the recorded prefix, then
    /// extends the path depth-first.
    pub fn choose(&mut self, d: &Decision) -> u32 {
        if self.depth == self.path.len() {
            let options = allowed_options(d, self.preemptions, self.bound);
            debug_assert!(!options.is_empty());
            self.path.push(BranchRec { options, next: 0 });
        }
        let rec = &self.path[self.depth];
        let opt = rec.options[rec.next];
        assert!(
            opt < d.options(),
            "DFS prefix diverged: option {opt} of {} at depth {} — \
             the scenario is not deterministic under replay",
            d.options(),
            self.depth
        );
        self.depth += 1;
        if is_preemption(d, opt) {
            self.preemptions += 1;
        }
        opt
    }

    /// Moves to the next unexplored schedule. Returns `true` when the
    /// (bounded) space is exhausted.
    pub fn advance(&mut self) -> bool {
        debug_assert!(self.depth == self.path.len(), "execution ended mid-prefix");
        self.path.truncate(self.depth);
        loop {
            match self.path.last_mut() {
                None => {
                    self.complete = true;
                    return true;
                }
                Some(rec) => {
                    rec.next += 1;
                    if rec.next < rec.options.len() {
                        return false;
                    }
                    self.path.pop();
                }
            }
        }
    }

    /// True once [`DfsCore::advance`] reported exhaustion.
    pub fn complete(&self) -> bool {
        self.complete
    }
}

/// Per-execution handle onto a shared [`DfsCore`].
pub struct DfsChooser(pub Arc<Mutex<DfsCore>>);

impl Chooser for DfsChooser {
    fn choose(&mut self, d: &Decision) -> u32 {
        self.0
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .choose(d)
    }
}

/// Seeded random walk over the (budget-filtered) options. Each
/// execution gets its own chooser derived from `(root_seed, index)`,
/// so a sampling run is reproducible execution-by-execution.
pub struct RandomChooser {
    rng: TestRng,
    bound: Option<u32>,
    preemptions: u32,
}

impl RandomChooser {
    pub fn new(rng: TestRng, bound: Option<u32>) -> Self {
        RandomChooser {
            rng,
            bound,
            preemptions: 0,
        }
    }
}

impl Chooser for RandomChooser {
    fn choose(&mut self, d: &Decision) -> u32 {
        let opts = allowed_options(d, self.preemptions, self.bound);
        let opt = opts[self.rng.gen_range(0..opts.len())];
        if is_preemption(d, opt) {
            self.preemptions += 1;
        }
        opt
    }
}

// ---------------------------------------------------------------- DPOR

/// Analysis thread-id width: the real slots plus one flush
/// pseudo-thread per slot (`FLUSH_BASE + t`, weak-memory mode). A
/// flush is an independently schedulable event, so it gets its own
/// clock component — reversing a flush against a racing access must
/// not imply reordering the owner's program steps.
const ATHREADS: usize = 2 * MAX_THREADS;

/// Step-index vector clock for the post-hoc race analysis. Component
/// `t` holds `j + 1` where `j` is the highest step index of thread `t`
/// that happens-before the clock's owner (0 ⇒ none). Step `j` of
/// thread `t` is concurrent with a point whose clock is `c` iff
/// `j >= c[t]`.
type StepClock = [usize; ATHREADS];

fn clock_join(a: &mut StepClock, b: &StepClock) {
    for i in 0..ATHREADS {
        a[i] = a[i].max(b[i]);
    }
}

/// Per-location state of the race analysis: the last write (with the
/// writer's clock *after* that write), plus every read since it.
#[derive(Default)]
struct LocAnal {
    /// `(thread, step index, clock)` of the most recent write-class op.
    w: Option<(usize, usize, StepClock)>,
    /// Read-class ops since the last write: `(thread, step index)`.
    reads: Vec<(usize, usize)>,
    /// Join of the readers' clocks, so a write orders after all of them.
    racc: StepClock,
}

/// One decision point of the DPOR exploration path.
enum DporNode {
    Thread {
        /// Thread that was running when the decision was taken.
        current: u32,
        /// Enabled slots, ascending (must replay identically).
        enabled: Vec<u32>,
        /// Preemptions spent strictly before this node. Path-invariant
        /// while the node is on the path, so the budget filter for
        /// backtrack insertions is well-defined.
        preempt_before: u32,
        /// Slot the current execution schedules here.
        scheduled: u32,
        /// Slots that must be explored from this state (persistent
        /// set, grown by race-driven insertions).
        backtrack: Vec<u32>,
        /// Slots already explored from this state.
        done: Vec<u32>,
    },
    Value {
        /// Option indices in exploration order (same order as the DFS:
        /// newest store first).
        options: Vec<u32>,
        next: usize,
    },
}

/// Persistent-set dynamic partial-order reduction over the DFS's
/// schedule space (Flanagan & Godefroid, POPL 2005), driven by the
/// access log the runtime records per execution.
///
/// Instead of enumerating every allowed option at every thread
/// decision, each node starts with a single scheduled thread; after an
/// execution, a vector-clock race analysis over its [`StepRec`] log
/// finds pairs of conflicting, concurrent operations and inserts the
/// later op's thread into the *backtrack set* of the decision that
/// scheduled the earlier op. Only inserted alternatives are explored,
/// so schedule pairs that merely commute independent operations are
/// never both run.
///
/// Two deliberate properties:
///
/// * The first execution takes exactly the choices the DFS would take
///   (current thread first, newest store first), and insertions are
///   filtered by the same preemption budget the DFS applies, so the
///   explored set is a subset of the bounded DFS's and every recorded
///   trace replays identically under [`ReplayChooser`].
/// * Steps whose `decision` is `None` had a single enabled thread, so
///   no insertion is possible there — which is precisely the
///   co-enabledness side condition of the classic algorithm.
pub struct DporCore {
    bound: Option<u32>,
    path: Vec<DporNode>,
    depth: usize,
    preemptions: u32,
    complete: bool,
}

impl DporCore {
    pub fn new(bound: Option<u32>) -> Self {
        DporCore {
            bound,
            path: Vec::new(),
            depth: 0,
            preemptions: 0,
            complete: false,
        }
    }

    /// Resets the per-execution cursor. Call before each execution.
    pub fn begin(&mut self) {
        self.depth = 0;
        self.preemptions = 0;
    }

    /// Resolves one decision: replays the recorded prefix, then
    /// extends the path with the DFS-preferred choice.
    pub fn choose(&mut self, d: &Decision) -> u32 {
        if self.depth == self.path.len() {
            self.path.push(match d {
                Decision::Thread { current, enabled } => {
                    let preferred = if enabled.contains(current) {
                        *current
                    } else {
                        enabled[0]
                    };
                    DporNode::Thread {
                        current: *current,
                        enabled: enabled.clone(),
                        preempt_before: self.preemptions,
                        scheduled: preferred,
                        backtrack: vec![preferred],
                        done: Vec::new(),
                    }
                }
                Decision::Value { candidates } => DporNode::Value {
                    options: (0..*candidates).rev().collect(),
                    next: 0,
                },
            });
        }
        let opt = match (&self.path[self.depth], d) {
            (
                DporNode::Thread {
                    enabled, scheduled, ..
                },
                Decision::Thread {
                    enabled: now_enabled,
                    ..
                },
            ) => {
                assert_eq!(
                    enabled, now_enabled,
                    "DPOR prefix diverged at depth {}: the scenario is \
                     not deterministic under replay",
                    self.depth
                );
                now_enabled
                    .iter()
                    .position(|t| t == scheduled)
                    .expect("scheduled thread no longer enabled") as u32
            }
            (DporNode::Value { options, next }, Decision::Value { .. }) => options[*next],
            _ => panic!(
                "DPOR prefix diverged at depth {}: decision kind changed",
                self.depth
            ),
        };
        assert!(opt < d.options());
        self.depth += 1;
        if is_preemption(d, opt) {
            self.preemptions += 1;
        }
        opt
    }

    /// Runs the race analysis over the finished execution's access log,
    /// grows backtrack sets, and moves to the next unexplored schedule.
    /// Returns `true` when the (bounded, persistent-set) space is
    /// exhausted.
    pub fn advance(&mut self, steps: &[StepRec]) -> bool {
        debug_assert!(self.depth == self.path.len(), "execution ended mid-prefix");
        self.analyze(steps);
        for node in &mut self.path {
            if let DporNode::Thread {
                scheduled, done, ..
            } = node
            {
                if !done.contains(scheduled) {
                    done.push(*scheduled);
                }
            }
        }
        loop {
            match self.path.last_mut() {
                None => {
                    self.complete = true;
                    return true;
                }
                Some(DporNode::Value { options, next }) => {
                    *next += 1;
                    if *next < options.len() {
                        return false;
                    }
                    self.path.pop();
                }
                Some(DporNode::Thread {
                    scheduled,
                    backtrack,
                    done,
                    ..
                }) => {
                    if let Some(&t) = backtrack.iter().find(|t| !done.contains(t)) {
                        *scheduled = t;
                        return false;
                    }
                    self.path.pop();
                }
            }
        }
    }

    /// True once [`DporCore::advance`] reported exhaustion.
    pub fn complete(&self) -> bool {
        self.complete
    }

    /// Vector-clock happens-before pass over one execution's access
    /// log. Conflicts between concurrent steps of different threads
    /// become backtrack insertions at the decision that scheduled the
    /// earlier step.
    fn analyze(&mut self, steps: &[StepRec]) {
        let mut clocks = [[0usize; ATHREADS]; ATHREADS];
        let mut locs: HashMap<(AccessSpace, usize), LocAnal> = HashMap::new();
        // `(earlier step index, later thread)` conflict pairs.
        let mut races: Vec<(usize, u32)> = Vec::new();
        for (k, s) in steps.iter().enumerate() {
            let p = (s.thread as usize).min(ATHREADS - 1);
            let space = s.kind.space();
            if space == AccessSpace::Thread {
                // Spawn/join: pure happens-before edges, no conflicts.
                let other = s.addr.min(MAX_THREADS - 1);
                if s.kind == solero_sync::model::AccessKind::Spawn {
                    clocks[p][p] = k + 1;
                    let parent = clocks[p];
                    clock_join(&mut clocks[other], &parent);
                } else {
                    let child = clocks[other];
                    clock_join(&mut clocks[p], &child);
                    clocks[p][p] = k + 1;
                }
                continue;
            }
            if !s.kind.is_write_class() && !s.kind.is_read_class() {
                // Fences: they order the issuing thread's own accesses
                // but are not themselves reads or writes of a location,
                // so they never participate in a conflict pair.
                clocks[p][p] = k + 1;
                continue;
            }
            let loc = locs.entry((space, s.addr)).or_default();
            if s.kind.is_write_class() {
                if let Some((tw, jw, _)) = &loc.w {
                    if *tw != p && *jw >= clocks[p][*tw] {
                        races.push((*jw, s.thread));
                    }
                }
                for &(tr, jr) in &loc.reads {
                    if tr != p && jr >= clocks[p][tr] {
                        races.push((jr, s.thread));
                    }
                }
                if let Some((_, _, cw)) = &loc.w {
                    let cw = *cw;
                    clock_join(&mut clocks[p], &cw);
                }
                let racc = loc.racc;
                clock_join(&mut clocks[p], &racc);
                clocks[p][p] = k + 1;
                loc.w = Some((p, k, clocks[p]));
                loc.reads.clear();
                loc.racc = [0; ATHREADS];
            } else {
                if let Some((tw, jw, cw)) = &loc.w {
                    if *tw != p && *jw >= clocks[p][*tw] {
                        races.push((*jw, s.thread));
                    }
                    let cw = *cw;
                    clock_join(&mut clocks[p], &cw);
                }
                clocks[p][p] = k + 1;
                loc.reads.push((p, k));
                let mine = clocks[p];
                clock_join(&mut loc.racc, &mine);
            }
        }
        for (j, t) in races {
            self.insert_backtrack(steps, j, t);
        }
    }

    /// Classic backtrack insertion at the decision that scheduled step
    /// `j`: insert the racing thread `t` when it was enabled there,
    /// otherwise every enabled thread. Insertions that would preempt
    /// past the budget are skipped, keeping the explored set inside the
    /// bounded DFS's (see DESIGN.md §9 for the coverage caveat this
    /// inherits from bounded partial-order reduction).
    fn insert_backtrack(&mut self, steps: &[StepRec], j: usize, t: u32) {
        let Some(d) = steps[j].decision else {
            return;
        };
        let bound = self.bound;
        let Some(DporNode::Thread {
            current,
            enabled,
            preempt_before,
            backtrack,
            done,
            ..
        }) = self.path.get_mut(d as usize)
        else {
            return;
        };
        let current = *current;
        let preempt_before = *preempt_before;
        let current_enabled = enabled.contains(&current);
        let candidates: Vec<u32> = if enabled.contains(&t) {
            vec![t]
        } else {
            enabled.clone()
        };
        for cand in candidates {
            let preemptive = current_enabled && cand != current;
            if preemptive && bound.is_some_and(|b| preempt_before >= b) {
                continue;
            }
            if !backtrack.contains(&cand) && !done.contains(&cand) {
                backtrack.push(cand);
            }
        }
    }
}

/// Per-execution handle onto a shared [`DporCore`].
pub struct DporChooser(pub Arc<Mutex<DporCore>>);

impl Chooser for DporChooser {
    fn choose(&mut self, d: &Decision) -> u32 {
        self.0
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .choose(d)
    }
}

/// Replays a recorded trace exactly.
pub struct ReplayChooser {
    trace: Vec<u32>,
    pos: usize,
}

impl ReplayChooser {
    pub fn new(trace: Vec<u32>) -> Self {
        ReplayChooser { trace, pos: 0 }
    }
}

impl Chooser for ReplayChooser {
    fn choose(&mut self, d: &Decision) -> u32 {
        assert!(
            self.pos < self.trace.len(),
            "replay ran past the recorded trace ({} decisions): \
             the scenario is not deterministic",
            self.trace.len()
        );
        let opt = self.trace[self.pos];
        assert!(
            opt < d.options(),
            "replay mismatch at decision {}: trace says {opt}, only {} options",
            self.pos,
            d.options()
        );
        self.pos += 1;
        opt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn thread(current: u32, enabled: &[u32]) -> Decision {
        Decision::Thread {
            current,
            enabled: enabled.to_vec(),
        }
    }

    #[test]
    fn current_thread_explored_first() {
        let opts = allowed_options(&thread(1, &[0, 1, 2]), 0, Some(2));
        assert_eq!(opts, vec![1, 0, 2], "current (index 1) first");
    }

    #[test]
    fn budget_exhausted_pins_current() {
        let opts = allowed_options(&thread(1, &[0, 1, 2]), 2, Some(2));
        assert_eq!(opts, vec![1], "no preemptions left");
    }

    #[test]
    fn forced_switch_is_free() {
        // Current thread blocked: all switches allowed even at budget 0.
        let opts = allowed_options(&thread(1, &[0, 2]), 5, Some(0));
        assert_eq!(opts, vec![0, 1]);
        assert!(!is_preemption(&thread(1, &[0, 2]), 0));
    }

    #[test]
    fn value_options_prefer_newest() {
        let opts = allowed_options(&Decision::Value { candidates: 3 }, 0, Some(0));
        assert_eq!(opts, vec![2, 1, 0]);
        assert!(!is_preemption(&Decision::Value { candidates: 3 }, 0));
    }

    #[test]
    fn preemption_definition() {
        let d = thread(0, &[0, 1]);
        assert!(!is_preemption(&d, 0));
        assert!(is_preemption(&d, 1));
    }

    /// Drives the DFS against a synthetic 2-decision tree and checks it
    /// enumerates exactly the full cross product, each schedule once.
    #[test]
    fn dfs_enumerates_small_tree() {
        let mut core = DfsCore::new(None);
        let d1 = thread(0, &[0, 1]);
        let d2 = Decision::Value { candidates: 3 };
        let mut seen = Vec::new();
        loop {
            core.begin();
            let a = core.choose(&d1);
            let b = core.choose(&d2);
            seen.push((a, b));
            if core.advance() {
                break;
            }
        }
        assert_eq!(seen.len(), 6, "2 × 3 schedules");
        let mut uniq = seen.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 6, "no duplicates: {seen:?}");
        assert!(core.complete());
    }

    /// With bound 0 the second thread is never explored while thread 0
    /// can run: only the no-preemption schedule exists.
    #[test]
    fn dfs_respects_preemption_bound() {
        let mut core = DfsCore::new(Some(0));
        let d = thread(0, &[0, 1]);
        let mut schedules = 0;
        loop {
            core.begin();
            // Three consecutive decisions where thread 0 stays enabled.
            for _ in 0..3 {
                assert_eq!(core.choose(&d), 0);
            }
            schedules += 1;
            if core.advance() {
                break;
            }
        }
        assert_eq!(schedules, 1);
    }

    /// Bound 1: schedules are "run thread 0, preempt at most once".
    #[test]
    fn dfs_bound_one_counts() {
        let mut core = DfsCore::new(Some(1));
        let d = thread(0, &[0, 1]);
        let mut schedules = 0;
        loop {
            core.begin();
            let mut preempted = false;
            for _ in 0..3 {
                let c = core.choose(&d);
                if c == 1 {
                    assert!(!preempted, "second preemption explored despite bound 1");
                    preempted = true;
                }
            }
            schedules += 1;
            if core.advance() {
                break;
            }
        }
        // Preempt at decision 0, 1, 2, or never.
        assert_eq!(schedules, 4);
    }

    #[test]
    fn replay_follows_trace() {
        let mut r = ReplayChooser::new(vec![1, 0, 2]);
        assert_eq!(r.choose(&thread(0, &[0, 1])), 1);
        assert_eq!(r.choose(&thread(1, &[0, 1])), 0);
        assert_eq!(r.choose(&Decision::Value { candidates: 3 }), 2);
    }

    #[test]
    #[should_panic(expected = "ran past the recorded trace")]
    fn replay_panics_past_trace() {
        let mut r = ReplayChooser::new(vec![0]);
        let d = thread(0, &[0, 1]);
        r.choose(&d);
        r.choose(&d);
    }

    #[test]
    fn random_chooser_is_deterministic_per_seed() {
        let d = thread(0, &[0, 1, 2]);
        let run = |seed| {
            let mut c = RandomChooser::new(TestRng::seed_from_u64(seed), Some(4));
            (0..16).map(|_| c.choose(&d)).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
    }

    use solero_sync::model::AccessKind;

    /// Minimal faithful re-creation of the runtime's scheduling loop,
    /// enough to drive a core: every op is one scheduling point, the
    /// chooser is consulted only with ≥ 2 enabled threads, and each
    /// executed op is logged with its decision attribution.
    fn run_sim(
        core: &mut DporCore,
        progs: &[&[(AccessKind, usize)]],
    ) -> Vec<StepRec> {
        core.begin();
        let mut cursor = vec![0usize; progs.len()];
        let mut current = 0u32;
        let mut trace_len = 0u32;
        let mut steps = Vec::new();
        loop {
            let enabled: Vec<u32> = (0..progs.len())
                .filter(|&t| cursor[t] < progs[t].len())
                .map(|t| t as u32)
                .collect();
            if enabled.is_empty() {
                return steps;
            }
            let (chosen, decision) = if enabled.len() > 1 {
                let d = Decision::Thread {
                    current,
                    enabled: enabled.clone(),
                };
                let idx = core.choose(&d);
                trace_len += 1;
                (enabled[idx as usize], Some(trace_len - 1))
            } else {
                (enabled[0], None)
            };
            let (kind, addr) = progs[chosen as usize][cursor[chosen as usize]];
            cursor[chosen as usize] += 1;
            steps.push(StepRec {
                thread: chosen,
                decision,
                kind,
                addr,
            });
            current = chosen;
        }
    }

    fn count_dpor(progs: &[&[(AccessKind, usize)]], bound: Option<u32>) -> u64 {
        let mut core = DporCore::new(bound);
        let mut n = 0;
        loop {
            let steps = run_sim(&mut core, progs);
            n += 1;
            assert!(n < 10_000, "DPOR failed to converge");
            if core.advance(&steps) {
                return n;
            }
        }
    }

    /// Independent writes to distinct locations: one schedule suffices
    /// (the DFS would run two).
    #[test]
    fn dpor_prunes_independent_writes() {
        let progs: &[&[(AccessKind, usize)]] = &[
            &[(AccessKind::Store, 0x10)],
            &[(AccessKind::Store, 0x20)],
        ];
        assert_eq!(count_dpor(progs, None), 1);
    }

    /// Concurrent reads never conflict, even on the same location.
    #[test]
    fn dpor_prunes_read_read() {
        let progs: &[&[(AccessKind, usize)]] = &[
            &[(AccessKind::Load, 0x10)],
            &[(AccessKind::Load, 0x10)],
        ];
        assert_eq!(count_dpor(progs, None), 1);
    }

    /// Conflicting writes must be explored in both orders.
    #[test]
    fn dpor_reverses_conflicting_writes() {
        let progs: &[&[(AccessKind, usize)]] = &[
            &[(AccessKind::Store, 0x10)],
            &[(AccessKind::Store, 0x10)],
        ];
        assert_eq!(count_dpor(progs, None), 2);
    }

    /// A write racing a read is reversed; the read-read pair is not.
    #[test]
    fn dpor_write_read_race_only() {
        let progs: &[&[(AccessKind, usize)]] = &[
            &[(AccessKind::Load, 0x10), (AccessKind::Load, 0x20)],
            &[(AccessKind::Store, 0x10)],
        ];
        let dpor = count_dpor(progs, None);
        // DFS over the same tree for comparison.
        let mut dfs = DfsCore::new(None);
        let mut dfs_n = 0;
        loop {
            dfs.begin();
            let mut cursor = [0usize; 2];
            let mut current = 0u32;
            loop {
                let enabled: Vec<u32> = (0..2)
                    .filter(|&t| cursor[t] < progs[t].len())
                    .map(|t| t as u32)
                    .collect();
                if enabled.is_empty() {
                    break;
                }
                let chosen = if enabled.len() > 1 {
                    let d = Decision::Thread {
                        current,
                        enabled: enabled.clone(),
                    };
                    enabled[dfs.choose(&d) as usize]
                } else {
                    enabled[0]
                };
                cursor[chosen as usize] += 1;
                current = chosen;
            }
            dfs_n += 1;
            if dfs.advance() {
                break;
            }
        }
        assert!(
            dpor < dfs_n,
            "expected a strict reduction: dpor={dpor} dfs={dfs_n}"
        );
        // Both orders of the racing (load 0x10, store 0x10) pair exist.
        assert!(dpor >= 2, "the race must still be reversed: {dpor}");
    }

    /// Preemption bound 0 pins the schedule exactly like the DFS does:
    /// the racing insertion is preemptive and gets filtered.
    #[test]
    fn dpor_respects_preemption_bound() {
        let progs: &[&[(AccessKind, usize)]] = &[
            &[(AccessKind::Store, 0x10)],
            &[(AccessKind::Store, 0x10)],
        ];
        assert_eq!(count_dpor(progs, Some(0)), 1);
    }

    /// The first execution of the DPOR core makes exactly the choices
    /// the DFS makes, so recorded traces stay replay-compatible.
    #[test]
    fn dpor_first_execution_matches_dfs() {
        let d1 = Decision::Thread {
            current: 0,
            enabled: vec![0, 1, 2],
        };
        let d2 = Decision::Thread {
            current: 2,
            enabled: vec![1, 2],
        };
        let d3 = Decision::Value { candidates: 3 };
        let mut dfs = DfsCore::new(Some(2));
        let mut dpor = DporCore::new(Some(2));
        dfs.begin();
        dpor.begin();
        for d in [&d1, &d2, &d3] {
            assert_eq!(dfs.choose(d), dpor.choose(d), "diverged at {d:?}");
        }
    }

    /// Value decisions are enumerated exhaustively even when no thread
    /// race ever inserts a backtrack point.
    #[test]
    fn dpor_enumerates_value_decisions() {
        let mut core = DporCore::new(None);
        let d = Decision::Value { candidates: 3 };
        let mut seen = Vec::new();
        loop {
            core.begin();
            seen.push(core.choose(&d));
            if core.advance(&[]) {
                break;
            }
        }
        assert_eq!(seen, vec![2, 1, 0]);
        assert!(core.complete());
    }

    /// Spawn/join edges are happens-before, not conflicts: a parent
    /// writing before spawn and a child writing the same location must
    /// not count as a race (no second execution).
    #[test]
    fn dpor_spawn_edge_orders_parent_and_child() {
        // Hand-built log: parent (t0) stores, spawns t1, t1 stores the
        // same location. No decision ever had 2 enabled threads.
        let steps = [
            StepRec {
                thread: 0,
                decision: None,
                kind: AccessKind::Store,
                addr: 0x10,
            },
            StepRec {
                thread: 0,
                decision: None,
                kind: AccessKind::Spawn,
                addr: 1,
            },
            StepRec {
                thread: 1,
                decision: None,
                kind: AccessKind::Store,
                addr: 0x10,
            },
        ];
        let mut core = DporCore::new(None);
        core.begin();
        assert!(core.advance(&steps), "nothing to backtrack into");
    }

    #[test]
    fn random_chooser_respects_bound() {
        let d = thread(0, &[0, 1]);
        let mut c = RandomChooser::new(TestRng::seed_from_u64(3), Some(2));
        let picks: Vec<u32> = (0..64).map(|_| c.choose(&d)).collect();
        assert!(
            picks.iter().filter(|&&p| p == 1).count() <= 2,
            "at most 2 preemptions: {picks:?}"
        );
    }
}
