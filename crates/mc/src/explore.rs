//! Schedule-space exploration strategies.
//!
//! Everything here is pure bookkeeping over [`Decision`] values and is
//! compiled (and unit-tested) in every build; only the driver that
//! actually runs executions ([`crate::Checker`]) needs the
//! `--cfg solero_mc` runtime.
//!
//! The exhaustive mode is a stateless DFS over schedule prefixes with
//! *iterative context bounding* (Musuvathi & Qadeer): at every thread
//! decision the currently running thread is tried first, and switching
//! away from a still-enabled thread (a *preemption*) is only explored
//! while the per-schedule preemption budget lasts. Most concurrency
//! bugs need very few preemptions, so a small bound covers the
//! interesting schedules at a fraction of the unbounded cost.

use std::sync::{Arc, Mutex, PoisonError};

use solero_sync::model::{Chooser, Decision};
use solero_testkit::TestRng;

/// The options a chooser may take at `d`, in exploration order, given
/// how many preemptions the schedule has already spent.
///
/// * Value decisions: newest store first (the sequentially consistent
///   answer), then increasingly stale candidates.
/// * Thread decisions: the current thread first when it is still
///   enabled; other threads only while the budget lasts. When the
///   current thread cannot continue, every switch is forced (free).
pub fn allowed_options(d: &Decision, preemptions: u32, bound: Option<u32>) -> Vec<u32> {
    match d {
        Decision::Value { candidates } => (0..*candidates).rev().collect(),
        Decision::Thread { current, enabled } => {
            match enabled.iter().position(|&t| t == *current) {
                Some(p) => {
                    let mut opts = vec![p as u32];
                    if bound.map_or(true, |b| preemptions < b) {
                        opts.extend((0..enabled.len() as u32).filter(|&i| i != p as u32));
                    }
                    opts
                }
                None => (0..enabled.len() as u32).collect(),
            }
        }
    }
}

/// True if taking `option` at `d` preempts a thread that could have
/// kept running.
pub fn is_preemption(d: &Decision, option: u32) -> bool {
    match d {
        Decision::Value { .. } => false,
        Decision::Thread { current, enabled } => {
            enabled.contains(current) && enabled[option as usize] != *current
        }
    }
}

struct BranchRec {
    /// Option indices in exploration order (fixed at first visit).
    options: Vec<u32>,
    /// Which of `options` the current execution takes.
    next: usize,
}

/// Persistent state of the exhaustive DFS, shared across executions.
pub struct DfsCore {
    bound: Option<u32>,
    path: Vec<BranchRec>,
    depth: usize,
    preemptions: u32,
    complete: bool,
}

impl DfsCore {
    pub fn new(bound: Option<u32>) -> Self {
        DfsCore {
            bound,
            path: Vec::new(),
            depth: 0,
            preemptions: 0,
            complete: false,
        }
    }

    /// Resets the per-execution cursor. Call before each execution.
    pub fn begin(&mut self) {
        self.depth = 0;
        self.preemptions = 0;
    }

    /// Resolves one decision: replays the recorded prefix, then
    /// extends the path depth-first.
    pub fn choose(&mut self, d: &Decision) -> u32 {
        if self.depth == self.path.len() {
            let options = allowed_options(d, self.preemptions, self.bound);
            debug_assert!(!options.is_empty());
            self.path.push(BranchRec { options, next: 0 });
        }
        let rec = &self.path[self.depth];
        let opt = rec.options[rec.next];
        assert!(
            opt < d.options(),
            "DFS prefix diverged: option {opt} of {} at depth {} — \
             the scenario is not deterministic under replay",
            d.options(),
            self.depth
        );
        self.depth += 1;
        if is_preemption(d, opt) {
            self.preemptions += 1;
        }
        opt
    }

    /// Moves to the next unexplored schedule. Returns `true` when the
    /// (bounded) space is exhausted.
    pub fn advance(&mut self) -> bool {
        debug_assert!(self.depth == self.path.len(), "execution ended mid-prefix");
        self.path.truncate(self.depth);
        loop {
            match self.path.last_mut() {
                None => {
                    self.complete = true;
                    return true;
                }
                Some(rec) => {
                    rec.next += 1;
                    if rec.next < rec.options.len() {
                        return false;
                    }
                    self.path.pop();
                }
            }
        }
    }

    /// True once [`DfsCore::advance`] reported exhaustion.
    pub fn complete(&self) -> bool {
        self.complete
    }
}

/// Per-execution handle onto a shared [`DfsCore`].
pub struct DfsChooser(pub Arc<Mutex<DfsCore>>);

impl Chooser for DfsChooser {
    fn choose(&mut self, d: &Decision) -> u32 {
        self.0
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .choose(d)
    }
}

/// Seeded random walk over the (budget-filtered) options. Each
/// execution gets its own chooser derived from `(root_seed, index)`,
/// so a sampling run is reproducible execution-by-execution.
pub struct RandomChooser {
    rng: TestRng,
    bound: Option<u32>,
    preemptions: u32,
}

impl RandomChooser {
    pub fn new(rng: TestRng, bound: Option<u32>) -> Self {
        RandomChooser {
            rng,
            bound,
            preemptions: 0,
        }
    }
}

impl Chooser for RandomChooser {
    fn choose(&mut self, d: &Decision) -> u32 {
        let opts = allowed_options(d, self.preemptions, self.bound);
        let opt = opts[self.rng.gen_range(0..opts.len())];
        if is_preemption(d, opt) {
            self.preemptions += 1;
        }
        opt
    }
}

/// Replays a recorded trace exactly.
pub struct ReplayChooser {
    trace: Vec<u32>,
    pos: usize,
}

impl ReplayChooser {
    pub fn new(trace: Vec<u32>) -> Self {
        ReplayChooser { trace, pos: 0 }
    }
}

impl Chooser for ReplayChooser {
    fn choose(&mut self, d: &Decision) -> u32 {
        assert!(
            self.pos < self.trace.len(),
            "replay ran past the recorded trace ({} decisions): \
             the scenario is not deterministic",
            self.trace.len()
        );
        let opt = self.trace[self.pos];
        assert!(
            opt < d.options(),
            "replay mismatch at decision {}: trace says {opt}, only {} options",
            self.pos,
            d.options()
        );
        self.pos += 1;
        opt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn thread(current: u32, enabled: &[u32]) -> Decision {
        Decision::Thread {
            current,
            enabled: enabled.to_vec(),
        }
    }

    #[test]
    fn current_thread_explored_first() {
        let opts = allowed_options(&thread(1, &[0, 1, 2]), 0, Some(2));
        assert_eq!(opts, vec![1, 0, 2], "current (index 1) first");
    }

    #[test]
    fn budget_exhausted_pins_current() {
        let opts = allowed_options(&thread(1, &[0, 1, 2]), 2, Some(2));
        assert_eq!(opts, vec![1], "no preemptions left");
    }

    #[test]
    fn forced_switch_is_free() {
        // Current thread blocked: all switches allowed even at budget 0.
        let opts = allowed_options(&thread(1, &[0, 2]), 5, Some(0));
        assert_eq!(opts, vec![0, 1]);
        assert!(!is_preemption(&thread(1, &[0, 2]), 0));
    }

    #[test]
    fn value_options_prefer_newest() {
        let opts = allowed_options(&Decision::Value { candidates: 3 }, 0, Some(0));
        assert_eq!(opts, vec![2, 1, 0]);
        assert!(!is_preemption(&Decision::Value { candidates: 3 }, 0));
    }

    #[test]
    fn preemption_definition() {
        let d = thread(0, &[0, 1]);
        assert!(!is_preemption(&d, 0));
        assert!(is_preemption(&d, 1));
    }

    /// Drives the DFS against a synthetic 2-decision tree and checks it
    /// enumerates exactly the full cross product, each schedule once.
    #[test]
    fn dfs_enumerates_small_tree() {
        let mut core = DfsCore::new(None);
        let d1 = thread(0, &[0, 1]);
        let d2 = Decision::Value { candidates: 3 };
        let mut seen = Vec::new();
        loop {
            core.begin();
            let a = core.choose(&d1);
            let b = core.choose(&d2);
            seen.push((a, b));
            if core.advance() {
                break;
            }
        }
        assert_eq!(seen.len(), 6, "2 × 3 schedules");
        let mut uniq = seen.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 6, "no duplicates: {seen:?}");
        assert!(core.complete());
    }

    /// With bound 0 the second thread is never explored while thread 0
    /// can run: only the no-preemption schedule exists.
    #[test]
    fn dfs_respects_preemption_bound() {
        let mut core = DfsCore::new(Some(0));
        let d = thread(0, &[0, 1]);
        let mut schedules = 0;
        loop {
            core.begin();
            // Three consecutive decisions where thread 0 stays enabled.
            for _ in 0..3 {
                assert_eq!(core.choose(&d), 0);
            }
            schedules += 1;
            if core.advance() {
                break;
            }
        }
        assert_eq!(schedules, 1);
    }

    /// Bound 1: schedules are "run thread 0, preempt at most once".
    #[test]
    fn dfs_bound_one_counts() {
        let mut core = DfsCore::new(Some(1));
        let d = thread(0, &[0, 1]);
        let mut schedules = 0;
        loop {
            core.begin();
            let mut preempted = false;
            for _ in 0..3 {
                let c = core.choose(&d);
                if c == 1 {
                    assert!(!preempted, "second preemption explored despite bound 1");
                    preempted = true;
                }
            }
            schedules += 1;
            if core.advance() {
                break;
            }
        }
        // Preempt at decision 0, 1, 2, or never.
        assert_eq!(schedules, 4);
    }

    #[test]
    fn replay_follows_trace() {
        let mut r = ReplayChooser::new(vec![1, 0, 2]);
        assert_eq!(r.choose(&thread(0, &[0, 1])), 1);
        assert_eq!(r.choose(&thread(1, &[0, 1])), 0);
        assert_eq!(r.choose(&Decision::Value { candidates: 3 }), 2);
    }

    #[test]
    #[should_panic(expected = "ran past the recorded trace")]
    fn replay_panics_past_trace() {
        let mut r = ReplayChooser::new(vec![0]);
        let d = thread(0, &[0, 1]);
        r.choose(&d);
        r.choose(&d);
    }

    #[test]
    fn random_chooser_is_deterministic_per_seed() {
        let d = thread(0, &[0, 1, 2]);
        let run = |seed| {
            let mut c = RandomChooser::new(TestRng::seed_from_u64(seed), Some(4));
            (0..16).map(|_| c.choose(&d)).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn random_chooser_respects_bound() {
        let d = thread(0, &[0, 1]);
        let mut c = RandomChooser::new(TestRng::seed_from_u64(3), Some(2));
        let picks: Vec<u32> = (0..64).map(|_| c.choose(&d)).collect();
        assert!(
            picks.iter().filter(|&&p| p == 1).count() <= 2,
            "at most 2 preemptions: {picks:?}"
        );
    }
}
