//! The execution driver: runs a scenario under a chooser repeatedly
//! until the schedule space is exhausted, a budget runs out, or an
//! invariant fails. Only built under `--cfg solero_mc` because it
//! needs the instrumented runtime in `solero-sync::rt`.

use std::fmt;
use std::sync::{Arc, Mutex as StdMutex};

use solero_sync::model::{format_trace, parse_trace, Chooser, Opts};
use solero_sync::rt::run_execution;
use solero_testkit::TestRng;

use crate::explore::{DfsChooser, DfsCore, DporChooser, DporCore, RandomChooser, ReplayChooser};

/// Virtual-thread spawn for scenarios, re-exported so checker tests
/// only need to depend on `solero-mc`.
pub use solero_sync::rt::spawn;

#[derive(Clone)]
enum Mode {
    Exhaustive,
    Dpor,
    Random { seed: u64, executions: u64 },
    Replay { trace: Vec<u32> },
}

/// Summary of a passing check.
#[derive(Debug, Clone)]
pub struct McStats {
    /// Executions actually run.
    pub executions: u64,
    /// Executions cut short (step limit or timed-wait budget); their
    /// suffixes were not explored.
    pub truncated: u64,
    /// True when exhaustive mode drained the whole bounded space.
    pub complete: bool,
}

/// A failed check: the invariant message plus the schedule that
/// produced it, as a replayable trace string.
#[derive(Debug, Clone)]
pub struct McViolation {
    /// Scenario name as passed to [`Checker::check`].
    pub name: String,
    /// The failure (assertion message, deadlock report, …).
    pub message: String,
    /// Dot-separated decision trace; feed to [`Checker::replay`].
    pub trace: String,
    /// How many executions ran before this one failed (inclusive).
    pub executions: u64,
}

impl fmt::Display for McViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mc[{}] violation after {} execution(s): {}\n  \
             trace: {}\n  \
             replay: Checker::replay(\"{}\").check(\"{}\", ...)",
            self.name, self.executions, self.message, self.trace, self.trace, self.name
        )
    }
}

impl std::error::Error for McViolation {}

/// Configurable scenario checker. Construct with [`Checker::exhaustive`],
/// [`Checker::random`] or [`Checker::replay`], then [`Checker::check`].
pub struct Checker {
    mode: Mode,
    preemption_bound: Option<u32>,
    max_steps: u64,
    timeout_budget: u32,
    max_executions: u64,
    weak_memory: bool,
}

impl Checker {
    /// Bounded-exhaustive DFS over all schedules (default preemption
    /// bound 2 — raise via [`Checker::preemption_bound`]).
    pub fn exhaustive() -> Self {
        Checker {
            mode: Mode::Exhaustive,
            preemption_bound: Some(2),
            max_steps: 20_000,
            timeout_budget: 3,
            max_executions: 200_000,
            weak_memory: false,
        }
    }

    /// Bounded-exhaustive exploration with dynamic partial-order
    /// reduction: same schedule space as [`Checker::exhaustive`] (same
    /// default preemption bound), but schedules that only commute
    /// independent operations are pruned via the per-execution access
    /// log. Violation traces replay exactly like exhaustive-mode ones.
    pub fn dpor() -> Self {
        Checker {
            mode: Mode::Dpor,
            preemption_bound: Some(2),
            max_steps: 20_000,
            timeout_budget: 3,
            max_executions: 200_000,
            weak_memory: false,
        }
    }

    /// Seeded random schedule sampling: `executions` walks, execution
    /// `i` derived from `(seed, i)` so any single walk is reproducible.
    /// `SOLERO_MC_SEED` overrides `seed` at run time.
    pub fn random(seed: u64, executions: u64) -> Self {
        Checker {
            mode: Mode::Random { seed, executions },
            preemption_bound: Some(3),
            max_steps: 20_000,
            timeout_budget: 3,
            max_executions: u64::MAX,
            weak_memory: false,
        }
    }

    /// Replays one recorded schedule, e.g. the `trace` of a
    /// [`McViolation`].
    ///
    /// # Panics
    /// On a malformed trace string.
    pub fn replay(trace: &str) -> Self {
        let trace = parse_trace(trace).unwrap_or_else(|e| panic!("bad trace: {e}"));
        Checker {
            mode: Mode::Replay { trace },
            preemption_bound: None,
            max_steps: 20_000,
            timeout_budget: 3,
            max_executions: 1,
            weak_memory: false,
        }
    }

    /// Explore under the TSO-style weak-memory model: stores buffer
    /// per-thread and commit at scheduler-chosen flush points (see
    /// `solero_sync::model::Opts::weak_memory`). A violation trace
    /// found under weak memory must be replayed with `weak_memory(true)`
    /// too — the option indices include flush choices.
    pub fn weak_memory(mut self, on: bool) -> Self {
        self.weak_memory = on;
        self
    }

    /// Preemption budget per schedule (`None` = unbounded).
    pub fn preemption_bound(mut self, bound: Option<u32>) -> Self {
        self.preemption_bound = bound;
        self
    }

    /// Per-execution scheduling-step limit before truncation.
    pub fn max_steps(mut self, n: u64) -> Self {
        self.max_steps = n;
        self
    }

    /// How many times a timed wait may "time out" before its thread is
    /// considered unable to make progress that way.
    pub fn timeout_budget(mut self, n: u32) -> Self {
        self.timeout_budget = n;
        self
    }

    /// Hard cap on executions (exhaustive mode safety valve).
    /// `SOLERO_MC_BUDGET` overrides it at run time.
    pub fn max_executions(mut self, n: u64) -> Self {
        self.max_executions = n;
        self
    }

    /// Runs `scenario` under this checker's exploration mode. The
    /// scenario must be self-contained and deterministic apart from
    /// scheduling: build state, spawn virtual threads via
    /// [`spawn`], join them, assert invariants.
    pub fn check<F>(&self, name: &str, scenario: F) -> Result<McStats, McViolation>
    where
        F: Fn() + Send + Sync + 'static,
    {
        let scenario: Arc<dyn Fn() + Send + Sync> = Arc::new(scenario);
        let opts = Opts {
            max_steps: self.max_steps,
            timeout_budget: self.timeout_budget,
            weak_memory: self.weak_memory,
        };
        let budget = env_u64("SOLERO_MC_BUDGET").unwrap_or(self.max_executions);

        let mut executions = 0u64;
        let mut truncated = 0u64;

        match &self.mode {
            Mode::Exhaustive => {
                let core = Arc::new(StdMutex::new(DfsCore::new(self.preemption_bound)));
                let complete = loop {
                    core.lock().unwrap().begin();
                    let chooser: Box<dyn Chooser> = Box::new(DfsChooser(core.clone()));
                    let res = run_execution(&opts, chooser, scenario.clone());
                    executions += 1;
                    truncated += res.truncated as u64;
                    if let Some(message) = res.failure {
                        return Err(violation(name, message, &res.trace, executions));
                    }
                    if core.lock().unwrap().advance() {
                        break true;
                    }
                    if executions >= budget {
                        break false;
                    }
                };
                let stats = McStats {
                    executions,
                    truncated,
                    complete,
                };
                report(name, "exhaustive", &stats);
                Ok(stats)
            }
            Mode::Dpor => {
                let core = Arc::new(StdMutex::new(DporCore::new(self.preemption_bound)));
                let complete = loop {
                    core.lock().unwrap().begin();
                    let chooser: Box<dyn Chooser> = Box::new(DporChooser(core.clone()));
                    let res = run_execution(&opts, chooser, scenario.clone());
                    executions += 1;
                    truncated += res.truncated as u64;
                    if let Some(message) = res.failure {
                        return Err(violation(name, message, &res.trace, executions));
                    }
                    if core.lock().unwrap().advance(&res.accesses) {
                        break true;
                    }
                    if executions >= budget {
                        break false;
                    }
                };
                let stats = McStats {
                    executions,
                    truncated,
                    complete,
                };
                report(name, "dpor", &stats);
                Ok(stats)
            }
            Mode::Random { seed, executions: n } => {
                let seed = env_u64("SOLERO_MC_SEED").unwrap_or(*seed);
                let n = (*n).min(budget);
                for i in 0..n {
                    let rng = TestRng::derive(seed, i);
                    let chooser: Box<dyn Chooser> =
                        Box::new(RandomChooser::new(rng, self.preemption_bound));
                    let res = run_execution(&opts, chooser, scenario.clone());
                    executions += 1;
                    truncated += res.truncated as u64;
                    if let Some(message) = res.failure {
                        return Err(violation(name, message, &res.trace, executions));
                    }
                }
                let stats = McStats {
                    executions,
                    truncated,
                    complete: false,
                };
                report(name, &format!("random seed={seed:#x}"), &stats);
                Ok(stats)
            }
            Mode::Replay { trace } => {
                let chooser: Box<dyn Chooser> = Box::new(ReplayChooser::new(trace.clone()));
                let res = run_execution(&opts, chooser, scenario.clone());
                if let Some(message) = res.failure {
                    return Err(violation(name, message, &res.trace, 1));
                }
                let stats = McStats {
                    executions: 1,
                    truncated: res.truncated as u64,
                    complete: false,
                };
                report(name, "replay", &stats);
                Ok(stats)
            }
        }
    }
}

fn violation(name: &str, message: String, trace: &[u32], executions: u64) -> McViolation {
    McViolation {
        name: name.to_string(),
        message,
        trace: format_trace(trace),
        executions,
    }
}

fn report(name: &str, mode: &str, stats: &McStats) {
    println!(
        "mc[{name}] {mode}: {} execution(s), {} truncated{}",
        stats.executions,
        stats.truncated,
        if stats.complete { ", space exhausted" } else { "" }
    );
}

/// `true` when `SOLERO_MC_BUDGET` caps executions for this process.
///
/// A deliberately capped run cannot promise that a bounded search
/// space was exhausted or that exploration covered any particular
/// schedule — tests gate such assertions on this, so the CI budget
/// knob never turns a passing suite into a failing one.
pub fn budget_overridden() -> bool {
    env_u64("SOLERO_MC_BUDGET").is_some()
}

/// Parses a decimal or `0x`-prefixed hex u64 from the environment.
fn env_u64(var: &str) -> Option<u64> {
    let raw = std::env::var(var).ok()?;
    let raw = raw.trim();
    if raw.is_empty() {
        return None;
    }
    let parsed = if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    match parsed {
        Ok(v) => Some(v),
        Err(_) => panic!("{var} must be a decimal or 0x-hex u64, got {raw:?}"),
    }
}
