//! # solero-mc — deterministic model checker for the elision protocol
//!
//! Exhaustively (or randomly, seeded) explores thread interleavings of
//! small SOLERO / tasuki / rwlock scenarios. Scenarios run on the
//! cooperative virtual-thread scheduler in `solero-sync::rt`, which is
//! only compiled under `--cfg solero_mc`; in that configuration the
//! `solero-sync` facade routes every atomic and mutex/condvar
//! operation through the scheduler, so every synchronization op is a
//! scheduling point and every schedule is reproducible.
//!
//! Build and run the checker tests with:
//!
//! ```text
//! RUSTFLAGS="--cfg solero_mc" CARGO_TARGET_DIR=target/mc \
//!     cargo test --offline -p solero-sync -p solero-mc
//! ```
//!
//! A violation prints a dot-separated *trace string* (for example
//! `1.0.3.2`) recording every nondeterministic choice. Feed it back
//! through [`Checker::replay`] to re-execute that exact schedule —
//! same assertion, same failure, every time.
//!
//! The exploration strategies themselves ([`explore`]) are plain data
//! structure code, compiled and unit-tested in every build.

pub mod explore;

pub use explore::{
    allowed_options, is_preemption, DfsChooser, DfsCore, DporChooser, DporCore, RandomChooser,
    ReplayChooser,
};
pub use solero_sync::model::{
    format_trace, parse_trace, AccessKind, AccessSpace, Decision, ExecResult, Opts, StepRec,
};

#[cfg(solero_mc)]
mod checker;
#[cfg(solero_mc)]
pub use checker::{budget_overridden, spawn, Checker, McStats, McViolation};
