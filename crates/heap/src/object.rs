//! Object model: handles, class ids, and the object header word.
//!
//! The shadow heap is one flat array of atomic words. An *object* is a
//! header word followed by `len` slot words; an [`ObjRef`] is the
//! header's word offset (0 is reserved and means `null`, like a Java
//! null reference). The header packs the class id and the slot count so
//! that a single atomic load classifies and bounds-checks any access —
//! even a stale speculative one.

use core::fmt;

/// A class (type) identifier, analogous to a Java class pointer.
///
/// # Examples
///
/// ```
/// use solero_heap::ClassId;
///
/// const NODE: ClassId = ClassId::new(3);
/// assert_eq!(NODE.raw(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassId(u16);

impl ClassId {
    /// The class id of freed storage; never a valid program class.
    pub const FREED: ClassId = ClassId(u16::MAX);

    /// Creates a class id.
    ///
    /// # Panics
    ///
    /// Panics if `raw` collides with the reserved freed marker.
    pub const fn new(raw: u16) -> Self {
        assert!(raw != u16::MAX, "class id u16::MAX is reserved");
        ClassId(raw)
    }

    /// The raw id.
    pub const fn raw(self) -> u16 {
        self.0
    }

    pub(crate) const fn from_raw_unchecked(raw: u16) -> Self {
        ClassId(raw)
    }
}

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "class#{}", self.0)
    }
}

/// A reference to a shadow-heap object. `ObjRef::NULL` models Java
/// `null`.
///
/// # Examples
///
/// ```
/// use solero_heap::ObjRef;
///
/// assert!(ObjRef::NULL.is_null());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ObjRef(pub(crate) u32);

impl ObjRef {
    /// The null reference.
    pub const NULL: ObjRef = ObjRef(0);

    /// True for the null reference.
    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }

    /// The raw handle value (the header word offset).
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Reconstructs a reference from a raw handle, e.g. one read out of
    /// an object slot. A zero raw value yields [`ObjRef::NULL`].
    #[inline]
    pub fn from_raw(raw: u32) -> Self {
        ObjRef(raw)
    }
}

impl Default for ObjRef {
    fn default() -> Self {
        ObjRef::NULL
    }
}

impl fmt::Display for ObjRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            write!(f, "null")
        } else {
            write!(f, "obj@{}", self.0)
        }
    }
}

/// Header word layout: `class (16) | len (32) | generation (16)`.
///
/// The generation counter increments on every free, so a stale handle
/// whose storage was recycled for the *same* class and length is still
/// usually detectable by collections that remember generations; the
/// primary detectors remain the class and bounds checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Header(pub u64);

impl Header {
    pub fn new(class: ClassId, len: u32, generation: u16) -> Self {
        Header((class.0 as u64) << 48 | (len as u64) << 16 | generation as u64)
    }

    pub fn class(self) -> ClassId {
        ClassId::from_raw_unchecked((self.0 >> 48) as u16)
    }

    pub fn len(self) -> u32 {
        (self.0 >> 16) as u32
    }

    pub fn generation(self) -> u16 {
        self.0 as u16
    }

    pub fn is_freed(self) -> bool {
        self.class() == ClassId::FREED
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let h = Header::new(ClassId::new(7), 123_456, 42);
        assert_eq!(h.class(), ClassId::new(7));
        assert_eq!(h.len(), 123_456);
        assert_eq!(h.generation(), 42);
        assert!(!h.is_freed());
    }

    #[test]
    fn freed_marker() {
        let h = Header::new(ClassId::FREED, 4, 0);
        assert!(h.is_freed());
    }

    #[test]
    fn null_ref() {
        assert!(ObjRef::NULL.is_null());
        assert!(!ObjRef::from_raw(5).is_null());
        assert_eq!(ObjRef::from_raw(0), ObjRef::NULL);
        assert_eq!(format!("{}", ObjRef::NULL), "null");
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn reserved_class_panics() {
        let _ = ClassId::new(u16::MAX);
    }
}
