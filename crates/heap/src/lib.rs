//! A shadow Java heap for speculation-safe reads.
//!
//! **Substitution note (see DESIGN.md §2):** the paper runs inside a
//! JVM, where a speculative read-only critical section may race with a
//! writer yet remain memory-safe — inconsistency surfaces as stale
//! values, runtime exceptions, or unbounded loops, all of which the
//! SOLERO recovery machinery handles. Safe Rust cannot race on ordinary
//! references, so the data protected by the evaluated locks lives in
//! this crate's [`Heap`]: a flat arena of `AtomicU64` words, objects
//! addressed by 32-bit handles (`0` = null), every access classified and
//! bounds-checked against an atomic header. Races become well-defined
//! *value*-level inconsistencies and typed [`Fault`]s — exactly the
//! failure model the paper's §3.3 recovers from.
//!
//! # Examples
//!
//! Build a two-node linked structure and read it back:
//!
//! ```
//! use solero_heap::{ClassId, Heap, ObjRef};
//!
//! const NODE: ClassId = ClassId::new(1); // layout: [value, next]
//! let heap = Heap::new(1 << 10);
//!
//! let tail = heap.alloc(NODE, 2).unwrap();
//! heap.store_i64(tail, 0, 20).unwrap();
//! let head = heap.alloc(NODE, 2).unwrap();
//! heap.store_i64(head, 0, 10).unwrap();
//! heap.store_ref(head, 1, tail).unwrap();
//!
//! let next = heap.load_ref(head, NODE, 1).unwrap();
//! assert_eq!(heap.load_i64(next, NODE, 0).unwrap(), 20);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod heap;
mod object;

pub use heap::{Heap, HeapReport, OutOfMemory};
pub use object::{ClassId, ObjRef};

pub use solero_runtime::fault::Fault;
