//! The shadow heap.
//!
//! Why it exists: SOLERO's read-only critical sections run **without**
//! holding the lock, concurrently with writers mutating the protected
//! object graph. In Java that is memory-safe — the worst outcomes are
//! stale/mixed values surfacing as runtime exceptions, which the
//! recovery machinery catches (§3.3). Plain Rust references cannot
//! express that (a data race is undefined behaviour), so protected data
//! lives here instead: objects are arrays of `AtomicU64` slots addressed
//! by handles, reads are `Acquire` loads that can observe stale or
//! mutually inconsistent *values* but never corrupt memory, and every
//! access is classified and bounds-checked against the object header so
//! inconsistency surfaces as a typed [`Fault`] exactly as it surfaces as
//! an exception in the paper's JVM.

use solero_sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use solero_sync::{Mutex, MutexGuard};
use std::sync::PoisonError;

use solero_runtime::fault::Fault;
use solero_runtime::osmonitor::MonitorKey;

/// Poison-tolerant lock on the free-list map: it only caches recyclable
/// regions, so state observed across a panicking allocator thread is
/// still a valid free list.
fn plock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

use crate::object::{ClassId, Header, ObjRef};

/// Error returned by [`Heap::alloc`] when the arena is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfMemory {
    /// Words requested.
    pub requested: u32,
    /// Words available.
    pub available: usize,
}

impl core::fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "shadow heap exhausted: requested {} words, {} available",
            self.requested, self.available
        )
    }
}

impl std::error::Error for OutOfMemory {}

/// Arena summary returned by [`Heap::check_integrity`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeapReport {
    /// Live (allocated, not freed) objects found.
    pub live: u64,
    /// Freed regions found.
    pub freed: u64,
    /// Arena words covered by the walk.
    pub words_scanned: usize,
}

/// A fixed-capacity shadow heap of atomic words.
///
/// Writers must externally synchronize mutations of an object graph
/// (that is the whole point of the locks under evaluation); readers may
/// access any object at any time and receive values or [`Fault`]s,
/// never undefined behaviour.
///
/// # Examples
///
/// ```
/// use solero_heap::{ClassId, Heap, ObjRef};
///
/// const PAIR: ClassId = ClassId::new(1);
/// let heap = Heap::new(1 << 10);
/// let obj = heap.alloc(PAIR, 2).unwrap();
/// heap.store(obj, 0, 7).unwrap();
/// heap.store(obj, 1, 9).unwrap();
/// assert_eq!(heap.load(obj, PAIR, 0).unwrap(), 7);
/// assert_eq!(heap.load(obj, PAIR, 1).unwrap(), 9);
/// assert!(heap.load(ObjRef::NULL, PAIR, 0).is_err());
/// ```
#[derive(Debug)]
pub struct Heap {
    mem: Box<[AtomicU64]>,
    /// Next unallocated word (offset 0 is reserved for `null`).
    bump: AtomicUsize,
    /// Free lists per object length, for handle recycling.
    free: Mutex<std::collections::HashMap<u32, Vec<u32>>>,
    /// Allocation counter (diagnostics).
    allocs: AtomicU64,
    /// Free counter (diagnostics).
    frees: AtomicU64,
}

impl Heap {
    /// Creates a heap of `capacity_words` words.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_words` is zero or exceeds `u32::MAX` (handles
    /// are 32-bit).
    pub fn new(capacity_words: usize) -> Self {
        assert!(capacity_words > 0, "heap capacity must be non-zero");
        assert!(
            capacity_words <= u32::MAX as usize,
            "heap capacity exceeds 32-bit handle space"
        );
        let mut v = Vec::with_capacity(capacity_words);
        v.resize_with(capacity_words, || AtomicU64::new(0));
        Heap {
            mem: v.into_boxed_slice(),
            bump: AtomicUsize::new(1), // offset 0 = null
            free: Mutex::new(std::collections::HashMap::new()),
            allocs: AtomicU64::new(0),
            frees: AtomicU64::new(0),
        }
    }

    /// Total capacity in words.
    pub fn capacity(&self) -> usize {
        self.mem.len()
    }

    /// Words handed out so far (high-water mark; recycling does not
    /// lower it).
    pub fn used_words(&self) -> usize {
        self.bump.load(Ordering::Relaxed)
    }

    /// Live allocation count (allocs minus frees).
    pub fn live_objects(&self) -> u64 {
        self.allocs
            .load(Ordering::Relaxed)
            .saturating_sub(self.frees.load(Ordering::Relaxed))
    }

    /// Allocates an object of `class` with `len` slots, zero-filled.
    ///
    /// Recycles a freed region of the same length when one exists —
    /// deliberately, because handle recycling is what lets stale
    /// speculative readers observe class-cast faults, as in a real JVM
    /// heap reusing memory.
    ///
    /// # Errors
    ///
    /// [`OutOfMemory`] when neither the free list nor the arena can
    /// satisfy the request.
    pub fn alloc(&self, class: ClassId, len: u32) -> Result<ObjRef, OutOfMemory> {
        assert_ne!(class, ClassId::FREED, "cannot allocate the freed class");
        // Try the free list first.
        let recycled = plock(&self.free).get_mut(&len).and_then(Vec::pop);
        let off = match recycled {
            Some(off) => off as usize,
            None => {
                let need = len as usize + 1;
                let off = self.bump.fetch_add(need, Ordering::Relaxed);
                if off + need > self.mem.len() {
                    // Roll back so repeated failures do not wrap.
                    self.bump.fetch_sub(need, Ordering::Relaxed);
                    return Err(OutOfMemory {
                        requested: len + 1,
                        available: self.mem.len().saturating_sub(off),
                    });
                }
                off
            }
        };
        // Zero the slots, then publish the header.
        let old_gen = Header(self.mem[off].load(Ordering::Relaxed)).generation();
        for i in 1..=len as usize {
            self.mem[off + i].store(0, Ordering::Relaxed);
        }
        self.mem[off].store(
            Header::new(class, len, old_gen.wrapping_add(1)).0,
            Ordering::Release,
        );
        self.allocs.fetch_add(1, Ordering::Relaxed);
        Ok(ObjRef(off as u32))
    }

    /// Frees an object, making its storage recyclable. Stale handles to
    /// it will observe [`Fault::StaleHandle`] (or, after recycling,
    /// [`Fault::ClassCast`] / wrong-but-typed values).
    ///
    /// # Panics
    ///
    /// Panics on `null` or an already-freed reference — freeing is a
    /// writer-side operation performed under the lock, where those are
    /// program bugs.
    pub fn free(&self, r: ObjRef) {
        assert!(!r.is_null(), "free(null)");
        let off = r.0 as usize;
        let h = Header(self.mem[off].load(Ordering::Acquire));
        assert!(!h.is_freed(), "double free of {r}");
        self.mem[off].store(
            Header::new(ClassId::FREED, h.len(), h.generation()).0,
            Ordering::Release,
        );
        plock(&self.free).entry(h.len()).or_default().push(r.0);
        self.frees.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    fn header(&self, r: ObjRef) -> Result<Header, Fault> {
        if r.is_null() {
            return Err(Fault::NullPointer);
        }
        let off = r.0 as usize;
        if off >= self.bump.load(Ordering::Relaxed) || off >= self.mem.len() {
            return Err(Fault::StaleHandle { handle: r.0 });
        }
        let h = Header(self.mem[off].load(Ordering::Acquire));
        if h.is_freed() {
            return Err(Fault::StaleHandle { handle: r.0 });
        }
        Ok(h)
    }

    /// The class of the object `r` refers to.
    ///
    /// # Errors
    ///
    /// [`Fault::NullPointer`] or [`Fault::StaleHandle`].
    pub fn class_of(&self, r: ObjRef) -> Result<ClassId, Fault> {
        Ok(self.header(r)?.class())
    }

    /// The slot count of the object `r` refers to.
    ///
    /// # Errors
    ///
    /// [`Fault::NullPointer`] or [`Fault::StaleHandle`].
    pub fn len_of(&self, r: ObjRef) -> Result<u32, Fault> {
        Ok(self.header(r)?.len())
    }

    /// The allocation generation of the live object `r` refers to.
    ///
    /// Every (re)allocation of a storage cell bumps its generation, so
    /// two observations of the same handle with different generations
    /// prove the object was freed and its storage recycled in between.
    /// Scenario hook: the model-checked collections tests use it to
    /// assert a structural mutation (rehash, rotation) really swapped
    /// epochs, i.e. the window under test actually opened.
    ///
    /// # Errors
    ///
    /// [`Fault::NullPointer`] or [`Fault::StaleHandle`].
    pub fn generation_of(&self, r: ObjRef) -> Result<u16, Fault> {
        Ok(self.header(r)?.generation())
    }

    /// Speculative-tolerant load of slot `idx`, verifying the object is
    /// of class `expected`.
    ///
    /// # Errors
    ///
    /// [`Fault::NullPointer`], [`Fault::StaleHandle`],
    /// [`Fault::ClassCast`] when the header class differs from
    /// `expected`, or [`Fault::IndexOutOfBounds`].
    #[inline]
    pub fn load(&self, r: ObjRef, expected: ClassId, idx: u32) -> Result<u64, Fault> {
        let h = self.header(r)?;
        if h.class() != expected {
            return Err(Fault::ClassCast {
                expected: expected.raw() as u32,
                found: h.class().raw() as u32,
            });
        }
        if idx >= h.len() {
            return Err(Fault::IndexOutOfBounds {
                index: idx as i64,
                len: h.len(),
            });
        }
        Ok(self.mem[r.0 as usize + 1 + idx as usize].load(Ordering::Acquire))
    }

    /// Load without a class check (for code that just read the class).
    ///
    /// # Errors
    ///
    /// [`Fault::NullPointer`], [`Fault::StaleHandle`], or
    /// [`Fault::IndexOutOfBounds`].
    #[inline]
    pub fn load_untyped(&self, r: ObjRef, idx: u32) -> Result<u64, Fault> {
        let h = self.header(r)?;
        if idx >= h.len() {
            return Err(Fault::IndexOutOfBounds {
                index: idx as i64,
                len: h.len(),
            });
        }
        Ok(self.mem[r.0 as usize + 1 + idx as usize].load(Ordering::Acquire))
    }

    /// Writer-side store into slot `idx`. Callers synchronize via the
    /// lock under evaluation; the store itself is `Release` so
    /// validated readers observe complete values.
    ///
    /// # Errors
    ///
    /// [`Fault::NullPointer`], [`Fault::StaleHandle`], or
    /// [`Fault::IndexOutOfBounds`] — writer-side faults are genuine
    /// program errors.
    #[inline]
    pub fn store(&self, r: ObjRef, idx: u32, value: u64) -> Result<(), Fault> {
        let h = self.header(r)?;
        if idx >= h.len() {
            return Err(Fault::IndexOutOfBounds {
                index: idx as i64,
                len: h.len(),
            });
        }
        self.mem[r.0 as usize + 1 + idx as usize].store(value, Ordering::Release);
        Ok(())
    }

    /// Plain-mode load of slot `idx` — the model of an ordinary Java
    /// field read (`getfield` of a non-volatile field): no acquire
    /// ordering at all, so a speculative reader's safety rests
    /// entirely on the lock's barriers and exit validation. The
    /// regular [`Heap::load`] is `Acquire`, which on its own rescues
    /// some torn reads the protocol's validation is supposed to catch;
    /// mutation-kill scenarios use the plain accessors so weakened
    /// validation cannot hide behind the data loads.
    ///
    /// # Errors
    ///
    /// Same as [`Heap::load`].
    #[inline]
    pub fn load_plain(&self, r: ObjRef, expected: ClassId, idx: u32) -> Result<u64, Fault> {
        let h = self.header(r)?;
        if h.class() != expected {
            return Err(Fault::ClassCast {
                expected: expected.raw() as u32,
                found: h.class().raw() as u32,
            });
        }
        if idx >= h.len() {
            return Err(Fault::IndexOutOfBounds {
                index: idx as i64,
                len: h.len(),
            });
        }
        Ok(self.mem[r.0 as usize + 1 + idx as usize].load(Ordering::Relaxed))
    }

    /// Plain-mode store into slot `idx` — the model of an ordinary
    /// Java field write (`putfield` of a non-volatile field). See
    /// [`Heap::load_plain`]; the writer relies on the lock's release
    /// for publication.
    ///
    /// # Errors
    ///
    /// Same as [`Heap::store`].
    #[inline]
    pub fn store_plain(&self, r: ObjRef, idx: u32, value: u64) -> Result<(), Fault> {
        let h = self.header(r)?;
        if idx >= h.len() {
            return Err(Fault::IndexOutOfBounds {
                index: idx as i64,
                len: h.len(),
            });
        }
        self.mem[r.0 as usize + 1 + idx as usize].store(value, Ordering::Relaxed);
        Ok(())
    }

    /// Borrows slot `idx` of the live object `r` as a raw atomic word —
    /// the storage for an **in-object compact lock word** (see
    /// `solero::CompactSpace::lock`). The reference stays valid for the
    /// heap's lifetime; it is the caller's job (the compact-lock layer,
    /// keyed by [`Heap::lock_key`]) not to interpret it after the object
    /// is freed and its storage recycled.
    ///
    /// # Errors
    ///
    /// [`Fault::NullPointer`], [`Fault::StaleHandle`], or
    /// [`Fault::IndexOutOfBounds`].
    #[inline]
    pub fn slot_atomic(&self, r: ObjRef, idx: u32) -> Result<&AtomicU64, Fault> {
        let h = self.header(r)?;
        if idx >= h.len() {
            return Err(Fault::IndexOutOfBounds {
                index: idx as i64,
                len: h.len(),
            });
        }
        Ok(&self.mem[r.0 as usize + 1 + idx as usize])
    }

    /// The monitor-table identity for a compact lock living in slot
    /// `idx` of object `r`: the slot's address plus the object's
    /// **allocation generation**. Freeing the object and recycling its
    /// storage bumps the generation, so a new object at the same address
    /// gets a *different* key and can never adopt a stale monitor — the
    /// address-reuse aliasing fix. (Generations are `u16` and wrap;
    /// a wrapped collision is benign because monitor claims are checked
    /// against the word's stored monitor id, never trusted from the
    /// table alone.)
    ///
    /// # Errors
    ///
    /// [`Fault::NullPointer`], [`Fault::StaleHandle`], or
    /// [`Fault::IndexOutOfBounds`].
    #[inline]
    pub fn lock_key(&self, r: ObjRef, idx: u32) -> Result<MonitorKey, Fault> {
        let generation = self.header(r)?.generation();
        let slot = self.slot_atomic(r, idx)?;
        Ok(MonitorKey::new(
            slot as *const AtomicU64 as usize,
            generation as u64,
        ))
    }

    /// Walks the whole arena validating that object headers tile it
    /// exactly (every allocation or freed region is accounted for, no
    /// overlaps, all lengths in range). Writers must be quiescent.
    ///
    /// # Errors
    ///
    /// [`Fault::StaleHandle`] pointing at the first malformed header.
    pub fn check_integrity(&self) -> Result<HeapReport, Fault> {
        let bump = self.bump.load(Ordering::Acquire);
        let mut off = 1usize;
        let mut live = 0u64;
        let mut freed = 0u64;
        while off < bump {
            let h = Header(self.mem[off].load(Ordering::Acquire));
            let len = h.len() as usize;
            if off + len + 1 > bump {
                return Err(Fault::StaleHandle { handle: off as u32 });
            }
            if h.is_freed() {
                freed += 1;
            } else {
                live += 1;
            }
            off += len + 1;
        }
        Ok(HeapReport {
            live,
            freed,
            words_scanned: bump - 1,
        })
    }

    /// Loads a slot holding an object reference.
    ///
    /// # Errors
    ///
    /// As [`Heap::load`].
    #[inline]
    pub fn load_ref(&self, r: ObjRef, expected: ClassId, idx: u32) -> Result<ObjRef, Fault> {
        Ok(ObjRef::from_raw(self.load(r, expected, idx)? as u32))
    }

    /// Stores an object reference into a slot.
    ///
    /// # Errors
    ///
    /// As [`Heap::store`].
    #[inline]
    pub fn store_ref(&self, r: ObjRef, idx: u32, value: ObjRef) -> Result<(), Fault> {
        self.store(r, idx, value.raw() as u64)
    }

    /// Loads a slot holding a signed integer.
    ///
    /// # Errors
    ///
    /// As [`Heap::load`].
    #[inline]
    pub fn load_i64(&self, r: ObjRef, expected: ClassId, idx: u32) -> Result<i64, Fault> {
        Ok(self.load(r, expected, idx)? as i64)
    }

    /// Stores a signed integer into a slot.
    ///
    /// # Errors
    ///
    /// As [`Heap::store`].
    #[inline]
    pub fn store_i64(&self, r: ObjRef, idx: u32, value: i64) -> Result<(), Fault> {
        self.store(r, idx, value as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: ClassId = ClassId::new(1);
    const B: ClassId = ClassId::new(2);

    #[test]
    fn alloc_store_load() {
        let h = Heap::new(64);
        let o = h.alloc(A, 3).unwrap();
        h.store(o, 0, 10).unwrap();
        h.store(o, 2, 30).unwrap();
        assert_eq!(h.load(o, A, 0).unwrap(), 10);
        assert_eq!(h.load(o, A, 1).unwrap(), 0, "slots start zeroed");
        assert_eq!(h.load(o, A, 2).unwrap(), 30);
        assert_eq!(h.class_of(o).unwrap(), A);
        assert_eq!(h.len_of(o).unwrap(), 3);
    }

    #[test]
    fn null_faults() {
        let h = Heap::new(16);
        assert_eq!(h.load(ObjRef::NULL, A, 0), Err(Fault::NullPointer));
        assert_eq!(h.store(ObjRef::NULL, 0, 1), Err(Fault::NullPointer));
        assert_eq!(h.class_of(ObjRef::NULL), Err(Fault::NullPointer));
    }

    #[test]
    fn class_cast_fault() {
        let h = Heap::new(16);
        let o = h.alloc(A, 1).unwrap();
        assert!(matches!(h.load(o, B, 0), Err(Fault::ClassCast { .. })));
    }

    #[test]
    fn bounds_fault() {
        let h = Heap::new(16);
        let o = h.alloc(A, 2).unwrap();
        assert!(matches!(
            h.load(o, A, 2),
            Err(Fault::IndexOutOfBounds { index: 2, len: 2 })
        ));
        assert!(matches!(h.store(o, 9, 0), Err(Fault::IndexOutOfBounds { .. })));
    }

    #[test]
    fn stale_handle_after_free() {
        let h = Heap::new(32);
        let o = h.alloc(A, 2).unwrap();
        h.free(o);
        assert!(matches!(h.load(o, A, 0), Err(Fault::StaleHandle { .. })));
    }

    #[test]
    fn recycled_handle_gets_fresh_generation_and_class_check() {
        let h = Heap::new(32);
        let o = h.alloc(A, 2).unwrap();
        h.store(o, 0, 77).unwrap();
        h.free(o);
        let o2 = h.alloc(B, 2).unwrap();
        assert_eq!(o2.raw(), o.raw(), "same-size free list recycles storage");
        // The stale typed access now sees a class-cast fault.
        assert!(matches!(h.load(o, A, 0), Err(Fault::ClassCast { .. })));
        // And the new object starts zeroed, not with the old 77.
        assert_eq!(h.load(o2, B, 0).unwrap(), 0);
    }

    #[test]
    fn out_of_memory_is_reported_and_recoverable() {
        let h = Heap::new(8);
        let o = h.alloc(A, 4).unwrap(); // 5 words incl. header, 3 left
        let e = h.alloc(A, 4).unwrap_err();
        assert!(e.available < 5);
        // Free and retry: recycling makes it fit again.
        h.free(o);
        assert!(h.alloc(A, 4).is_ok());
    }

    #[test]
    fn garbage_handle_is_stale_not_ub() {
        let h = Heap::new(16);
        let _ = h.alloc(A, 2).unwrap();
        let wild = ObjRef::from_raw(1_000_000);
        assert!(matches!(h.load(wild, A, 0), Err(Fault::StaleHandle { .. })));
    }

    #[test]
    fn live_object_accounting() {
        let h = Heap::new(64);
        let a = h.alloc(A, 1).unwrap();
        let b = h.alloc(A, 1).unwrap();
        assert_eq!(h.live_objects(), 2);
        h.free(a);
        assert_eq!(h.live_objects(), 1);
        h.free(b);
        assert_eq!(h.live_objects(), 0);
    }

    #[test]
    fn ref_and_int_helpers_roundtrip() {
        let h = Heap::new(32);
        let a = h.alloc(A, 2).unwrap();
        let b = h.alloc(B, 1).unwrap();
        h.store_ref(a, 0, b).unwrap();
        h.store_i64(a, 1, -42).unwrap();
        assert_eq!(h.load_ref(a, A, 0).unwrap(), b);
        assert_eq!(h.load_i64(a, A, 1).unwrap(), -42);
        assert_eq!(h.load_ref(a, A, 1).ok().map(|r| r.is_null()), Some(false));
    }

    #[test]
    fn integrity_walk_tiles_the_arena() {
        let h = Heap::new(256);
        let a = h.alloc(A, 3).unwrap();
        let b = h.alloc(B, 1).unwrap();
        let c = h.alloc(A, 5).unwrap();
        let r = h.check_integrity().unwrap();
        assert_eq!(r.live, 3);
        assert_eq!(r.freed, 0);
        assert_eq!(r.words_scanned, 4 + 2 + 6);
        h.free(b);
        let r = h.check_integrity().unwrap();
        assert_eq!(r.live, 2);
        assert_eq!(r.freed, 1);
        // Recycling keeps the tiling intact.
        let b2 = h.alloc(B, 1).unwrap();
        assert_eq!(b2.raw(), b.raw());
        let r = h.check_integrity().unwrap();
        assert_eq!((r.live, r.freed), (3, 0));
        let _ = (a, c);
    }

    #[test]
    fn slot_atomic_exposes_the_slot_storage() {
        let h = Heap::new(32);
        let o = h.alloc(A, 2).unwrap();
        h.store(o, 1, 55).unwrap();
        let slot = h.slot_atomic(o, 1).unwrap();
        assert_eq!(slot.load(Ordering::Acquire), 55);
        slot.store(56, Ordering::Release);
        assert_eq!(h.load(o, A, 1).unwrap(), 56);
        assert!(matches!(
            h.slot_atomic(o, 2),
            Err(Fault::IndexOutOfBounds { .. })
        ));
        assert_eq!(
            h.slot_atomic(ObjRef::NULL, 0).err(),
            Some(Fault::NullPointer)
        );
    }

    #[test]
    fn lock_key_carries_generation_and_changes_across_recycling() {
        let h = Heap::new(32);
        let o = h.alloc(A, 2).unwrap();
        let k0 = h.lock_key(o, 0).unwrap();
        let k1 = h.lock_key(o, 1).unwrap();
        assert_ne!(k0, k1, "distinct slots get distinct keys");
        assert!(k0.gen >= 1, "heap keys never use the raw 0 namespace");
        h.free(o);
        assert_eq!(h.lock_key(o, 0), Err(Fault::StaleHandle { handle: o.raw() }));
        let o2 = h.alloc(A, 2).unwrap();
        assert_eq!(o2.raw(), o.raw(), "same-size free list recycles storage");
        let k0b = h.lock_key(o2, 0).unwrap();
        assert_eq!(k0.addr, k0b.addr, "same storage, same slot address");
        assert_ne!(k0, k0b, "recycling bumps the generation in the key");
    }

    #[test]
    fn store_to_freed_object_faults() {
        let h = Heap::new(32);
        let o = h.alloc(A, 2).unwrap();
        h.free(o);
        assert!(matches!(h.store(o, 0, 1), Err(Fault::StaleHandle { .. })));
    }

    #[test]
    fn concurrent_readers_never_crash() {
        use std::sync::Arc;
        let h = Arc::new(Heap::new(1 << 12));
        let root = h.alloc(A, 8).unwrap();
        std::thread::scope(|s| {
            // Writer: continuously free/realloc children and relink.
            let hw = Arc::clone(&h);
            s.spawn(move || {
                let mut child = ObjRef::NULL;
                for i in 0..5_000u64 {
                    if !child.is_null() {
                        hw.free(child);
                    }
                    child = hw.alloc(B, 2).unwrap();
                    hw.store(child, 0, i).unwrap();
                    hw.store(child, 1, i).unwrap();
                    hw.store_ref(root, 0, child).unwrap();
                }
            });
            // Readers: chase the pointer with no synchronization.
            for _ in 0..4 {
                let hr = Arc::clone(&h);
                s.spawn(move || {
                    for _ in 0..20_000 {
                        let r = hr
                            .load_ref(root, A, 0)
                            .and_then(|c| Ok((hr.load(c, B, 0)?, hr.load(c, B, 1)?)));
                        // Values may be stale or the handle dangling,
                        // but the call must return, not crash.
                        std::hint::black_box(r).ok();
                    }
                });
            }
        });
    }
}
