//! Synchronization facade for the SOLERO reproduction.
//!
//! Every protocol crate (`solero`, `solero-tasuki`, `solero-rwlock`,
//! `solero-heap`, and the `OsMonitor` half of `solero-runtime`) imports
//! its atomics, mutexes and condition variables from here instead of
//! `std::sync`. In a normal build this module is nothing but
//! re-exports — the types *are* the `std` types, so the facade is
//! zero-cost and the benches compile unchanged.
//!
//! Under `RUSTFLAGS="--cfg solero_mc"` the same paths resolve to
//! instrumented shims ([`shim`]) that yield to a cooperative scheduler
//! ([`rt`]) at every operation. The scheduler runs exactly one virtual
//! thread at a time and asks a [`model::Chooser`] which one, which is
//! what lets `solero-mc` exhaustively enumerate interleavings of small
//! lock scenarios and deterministically replay any failing schedule.
//!
//! The cfg is deliberately a `rustc` flag rather than a Cargo feature:
//! feature unification would silently poison ordinary builds of any
//! crate in the same graph, whereas `--cfg solero_mc` only exists when
//! the model-checking step sets it (with its own target directory).

pub mod model;

#[cfg(not(solero_mc))]
pub mod atomic {
    //! Re-exports of `std::sync::atomic` (normal builds).
    pub use std::sync::atomic::{
        fence, AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering,
    };
}

#[cfg(not(solero_mc))]
pub use std::sync::{Condvar, LockResult, Mutex, MutexGuard, PoisonError, WaitTimeoutResult};

#[cfg(solero_mc)]
pub mod rt;

#[cfg(solero_mc)]
pub mod shim;

#[cfg(solero_mc)]
pub mod atomic {
    //! Instrumented atomics (model-checking builds). `fence` routes
    //! through the shim so the scheduler sees every barrier the
    //! protocol issues (the §3.4 entry fence is protocol-critical and
    //! must be a first-class scheduler op, not an invisible intrinsic).
    pub use crate::shim::{fence, AtomicU64, AtomicUsize, Ordering};
    pub use std::sync::atomic::{AtomicBool, AtomicU32};
}

#[cfg(solero_mc)]
pub use shim::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};

#[cfg(solero_mc)]
pub use std::sync::{LockResult, PoisonError};

#[cfg(all(test, not(solero_mc)))]
mod tests {
    //! The facade's whole contract in a normal build is "these are the
    //! std types". Exercise the paths the protocol crates use.
    use super::atomic::{AtomicU64, AtomicUsize, Ordering};
    use super::{Condvar, Mutex, PoisonError};
    use std::time::Duration;

    #[test]
    fn atomics_are_std_atomics() {
        let a: std::sync::atomic::AtomicU64 = AtomicU64::new(7);
        a.fetch_add(1, Ordering::AcqRel);
        assert_eq!(a.load(Ordering::Acquire), 8);
        let b: std::sync::atomic::AtomicUsize = AtomicUsize::new(1);
        assert_eq!(b.swap(2, Ordering::AcqRel), 1);
    }

    #[test]
    fn mutex_condvar_are_std() {
        let m = Mutex::new(0u32);
        let cv = Condvar::new();
        let g = m.lock().unwrap_or_else(PoisonError::into_inner);
        let (g, res) = cv
            .wait_timeout(g, Duration::from_millis(1))
            .unwrap_or_else(PoisonError::into_inner);
        assert!(res.timed_out());
        assert_eq!(*g, 0);
    }
}
