//! Scheduler-facing data model, compiled in **every** build.
//!
//! The cooperative runtime ([`crate::rt`]) only exists under
//! `--cfg solero_mc`, but the vocabulary it speaks — decision points,
//! choosers, execution results, the printed trace format — is plain
//! data. Keeping it cfg-free lets `solero-mc` compile (and unit-test
//! its DFS/replay logic) in ordinary builds, so the tier-1 suite
//! exercises the explorer's control logic without the shims.

/// Hard cap on virtual threads per execution. Small on purpose: the
/// schedule space is exponential in thread count, and every scenario
/// the checkers run fits in 3–4 threads.
pub const MAX_THREADS: usize = 8;

/// First pseudo-thread id used for store-buffer flush options under the
/// weak-memory mode ([`Opts::weak_memory`]). A [`Decision::Thread`]
/// option `FLUSH_BASE + t` means "apply the oldest buffered store of
/// virtual thread `t` to memory" rather than "run thread `t`". Flush
/// pseudo-ids also appear as [`StepRec::thread`] on
/// [`AccessKind::StoreFlush`] records so the DPOR analysis can reorder
/// a flush independently of its issuing thread.
pub const FLUSH_BASE: usize = MAX_THREADS;

/// One point in an execution where more than one continuation exists.
///
/// The scheduler consults the [`Chooser`] *only* when there are at
/// least two options; forced steps are not decisions and do not appear
/// in the trace. That keeps traces short and makes replay independent
/// of how many single-option steps surround each real choice.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Decision {
    /// Pick which virtual thread runs next.
    Thread {
        /// Slot of the thread that just yielded (it may or may not be
        /// in `enabled`; when it is not, any choice is a forced switch
        /// rather than a preemption).
        current: u32,
        /// Slots currently able to run, in ascending slot order.
        enabled: Vec<u32>,
    },
    /// Pick which store a `Relaxed` load observes (index into the
    /// candidate window, oldest first; the last index is the newest
    /// store, i.e. the sequentially consistent answer).
    Value {
        /// Number of candidate stores (always ≥ 2 when consulted).
        candidates: u32,
    },
}

impl Decision {
    /// Number of options at this decision.
    pub fn options(&self) -> u32 {
        match self {
            Decision::Thread { enabled, .. } => enabled.len() as u32,
            Decision::Value { candidates } => *candidates,
        }
    }
}

/// Strategy that resolves decision points. Implemented by the DFS,
/// seeded-random and replay choosers in `solero-mc`.
pub trait Chooser: Send {
    /// Returns the index of the option to take (`< d.options()`).
    fn choose(&mut self, d: &Decision) -> u32;
}

/// What one scheduled step did, for the dependence (conflict) relation
/// of dynamic partial-order reduction.
///
/// Read-class and write-class operations on the same address conflict
/// when at least one is write-class; `Spawn`/`Join` never conflict with
/// anything — they only contribute happens-before edges.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// Non-`Relaxed` atomic load (read class).
    Load,
    /// `Relaxed` atomic load (read class; may observe stale stores).
    LoadRelaxed,
    /// Atomic store (write class).
    Store,
    /// Read-modify-write (write class).
    Rmw,
    /// Successful compare-exchange (write class).
    CasSuccess,
    /// Failed compare-exchange — a load of the newest value (read class).
    CasFail,
    /// Mutex acquisition (write class on the mutex address).
    MutexLock,
    /// Mutex release (write class on the mutex address).
    MutexUnlock,
    /// Condvar wait enqueue (write class on the condvar address).
    CvWait,
    /// Condvar wake-up — notified or timed out (write class on the
    /// condvar address, so the wake is ordered after its notify).
    CvWake,
    /// Condvar notify (write class on the condvar address).
    CvNotify,
    /// Virtual-thread spawn; `addr` is the child slot (hb edge only).
    Spawn,
    /// Virtual-thread join; `addr` is the target slot (hb edge only).
    Join,
    /// `atomic::fence(ord)` through the facade. Orders the issuing
    /// thread's own operations (a drain point under the weak-memory
    /// mode when `SeqCst`); conflicts with nothing by itself.
    Fence,
    /// The modeled Store→Load barrier (`storeload_fence`): always a
    /// full drain of the issuing thread's store buffer.
    StoreLoadFence,
    /// Weak-memory mode only: a store deposited into the issuing
    /// thread's store buffer. Not yet visible to anyone else, so it is
    /// neither read- nor write-class; the conflict-relevant write is
    /// the later [`AccessKind::StoreFlush`].
    StoreBuffered,
    /// Weak-memory mode only: a buffered store becoming globally
    /// visible (write class). Attributed to pseudo-thread
    /// [`FLUSH_BASE`]` + owner` so DPOR can reverse a flush against a
    /// racing access without also reordering the owner's program.
    StoreFlush,
}

/// Address spaces for access records. Mutex/condvar shims key their
/// model state by the shim's own address, which can numerically collide
/// with an atomic cell's address; tagging the space keeps the conflict
/// relation from inventing cross-type dependencies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AccessSpace {
    /// Atomic cells.
    Atomic,
    /// Model mutexes.
    Mutex,
    /// Model condvars.
    Cv,
    /// Thread slots (spawn/join).
    Thread,
    /// Fences (no location; `addr` is always 0).
    Fence,
}

impl AccessKind {
    /// True for operations that behave like a write for the conflict
    /// relation. Lock and condvar operations are all write-class on
    /// their own address — conservative, and exactly how classic DPOR
    /// treats acquire/release.
    pub fn is_write_class(self) -> bool {
        matches!(
            self,
            AccessKind::Store
                | AccessKind::StoreFlush
                | AccessKind::Rmw
                | AccessKind::CasSuccess
                | AccessKind::MutexLock
                | AccessKind::MutexUnlock
                | AccessKind::CvWait
                | AccessKind::CvWake
                | AccessKind::CvNotify
        )
    }

    /// True for operations that behave like a read.
    pub fn is_read_class(self) -> bool {
        matches!(
            self,
            AccessKind::Load | AccessKind::LoadRelaxed | AccessKind::CasFail
        )
    }

    /// The address space this kind's `addr` lives in.
    pub fn space(self) -> AccessSpace {
        match self {
            AccessKind::Load
            | AccessKind::LoadRelaxed
            | AccessKind::Store
            | AccessKind::StoreBuffered
            | AccessKind::StoreFlush
            | AccessKind::Rmw
            | AccessKind::CasSuccess
            | AccessKind::CasFail => AccessSpace::Atomic,
            AccessKind::MutexLock | AccessKind::MutexUnlock => AccessSpace::Mutex,
            AccessKind::CvWait | AccessKind::CvWake | AccessKind::CvNotify => AccessSpace::Cv,
            AccessKind::Spawn | AccessKind::Join => AccessSpace::Thread,
            AccessKind::Fence | AccessKind::StoreLoadFence => AccessSpace::Fence,
        }
    }
}

/// One executed operation of an execution, in program order of the
/// whole schedule. The runtime records these so the DPOR explorer can
/// run its post-hoc race analysis without re-instrumenting anything.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StepRec {
    /// Virtual-thread slot that performed the operation.
    pub thread: u32,
    /// Index into the decision trace of the scheduling decision that
    /// let this thread reach the operation, or `None` when the
    /// scheduler had no choice (a single enabled thread). A `None`
    /// step cannot be the target of a backtrack insertion — with one
    /// enabled thread there was nothing else to schedule, which is
    /// exactly the co-enabledness side condition of Flanagan–Godefroid.
    pub decision: Option<u32>,
    /// What the operation did.
    pub kind: AccessKind,
    /// Location key within [`AccessKind::space`].
    pub addr: usize,
}

/// Per-execution limits and knobs.
#[derive(Clone, Debug)]
pub struct Opts {
    /// Abort (as a truncation, not a failure) after this many
    /// scheduling points. Bounds schedules that live-lock, e.g. a
    /// timed waiter firing its timeout in a loop.
    pub max_steps: u64,
    /// How many times each timed wait may wake by timeout before it is
    /// treated as an untimed wait. Timed waits are the protocol's
    /// liveness backstop (FLC re-checks); an unbounded model of them
    /// would branch forever.
    pub timeout_budget: u32,
    /// Model TSO-style store buffering: plain atomic stores go into a
    /// per-thread FIFO buffer and become globally visible only at a
    /// scheduler-chosen flush point (a `FLUSH_BASE + t` option), at a
    /// forced drain (RMW/CAS, `SeqCst` store or fence,
    /// `storeload_fence`, mutex/condvar ops, spawn, joining a thread),
    /// or when the buffer overflows. Off by default: the base model
    /// stays sequentially consistent apart from `Relaxed` stale loads.
    pub weak_memory: bool,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            max_steps: 4_000,
            timeout_budget: 3,
            weak_memory: false,
        }
    }
}

/// Outcome of one execution under a chooser.
#[derive(Clone, Debug, Default)]
pub struct ExecResult {
    /// First invariant violation observed (assertion message, deadlock
    /// description, …). `None` for a clean or truncated execution.
    pub failure: Option<String>,
    /// Option index taken at every decision point, in order. Feeding
    /// this back through a replay chooser reproduces the execution.
    pub trace: Vec<u32>,
    /// The execution hit `max_steps` or exhausted every timeout budget
    /// and was cut short. Not a failure: the explored prefix is valid.
    pub truncated: bool,
    /// Scheduling points executed.
    pub steps: u64,
    /// Every instrumented operation in schedule order, with its
    /// decision attribution — the input to the DPOR race analysis.
    /// Empty outside the model-checked runtime.
    pub accesses: Vec<StepRec>,
}

/// Renders a trace as the printed, replayable string form: option
/// indices joined by `.` (empty trace ⇒ `"-"`, an execution with no
/// choice at all).
pub fn format_trace(trace: &[u32]) -> String {
    if trace.is_empty() {
        "-".to_string()
    } else {
        trace
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(".")
    }
}

/// Parses the string form produced by [`format_trace`].
pub fn parse_trace(s: &str) -> Result<Vec<u32>, String> {
    let s = s.trim();
    if s.is_empty() || s == "-" {
        return Ok(Vec::new());
    }
    s.split('.')
        .map(|part| {
            part.parse::<u32>()
                .map_err(|e| format!("bad trace element {part:?}: {e}"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_roundtrip() {
        for t in [vec![], vec![0], vec![3, 0, 1, 2, 10]] {
            assert_eq!(parse_trace(&format_trace(&t)).unwrap(), t);
        }
    }

    #[test]
    fn empty_trace_prints_dash() {
        assert_eq!(format_trace(&[]), "-");
        assert_eq!(parse_trace("-").unwrap(), Vec::<u32>::new());
        assert_eq!(parse_trace("").unwrap(), Vec::<u32>::new());
    }

    #[test]
    fn bad_trace_reports_element() {
        let err = parse_trace("1.x.2").unwrap_err();
        assert!(err.contains("\"x\""), "{err}");
    }

    #[test]
    fn decision_option_counts() {
        let t = Decision::Thread {
            current: 0,
            enabled: vec![0, 2],
        };
        assert_eq!(t.options(), 2);
        assert_eq!(Decision::Value { candidates: 3 }.options(), 3);
    }
}
