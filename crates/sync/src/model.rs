//! Scheduler-facing data model, compiled in **every** build.
//!
//! The cooperative runtime ([`crate::rt`]) only exists under
//! `--cfg solero_mc`, but the vocabulary it speaks — decision points,
//! choosers, execution results, the printed trace format — is plain
//! data. Keeping it cfg-free lets `solero-mc` compile (and unit-test
//! its DFS/replay logic) in ordinary builds, so the tier-1 suite
//! exercises the explorer's control logic without the shims.

/// Hard cap on virtual threads per execution. Small on purpose: the
/// schedule space is exponential in thread count, and every scenario
/// the checkers run fits in 3–4 threads.
pub const MAX_THREADS: usize = 8;

/// One point in an execution where more than one continuation exists.
///
/// The scheduler consults the [`Chooser`] *only* when there are at
/// least two options; forced steps are not decisions and do not appear
/// in the trace. That keeps traces short and makes replay independent
/// of how many single-option steps surround each real choice.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Decision {
    /// Pick which virtual thread runs next.
    Thread {
        /// Slot of the thread that just yielded (it may or may not be
        /// in `enabled`; when it is not, any choice is a forced switch
        /// rather than a preemption).
        current: u32,
        /// Slots currently able to run, in ascending slot order.
        enabled: Vec<u32>,
    },
    /// Pick which store a `Relaxed` load observes (index into the
    /// candidate window, oldest first; the last index is the newest
    /// store, i.e. the sequentially consistent answer).
    Value {
        /// Number of candidate stores (always ≥ 2 when consulted).
        candidates: u32,
    },
}

impl Decision {
    /// Number of options at this decision.
    pub fn options(&self) -> u32 {
        match self {
            Decision::Thread { enabled, .. } => enabled.len() as u32,
            Decision::Value { candidates } => *candidates,
        }
    }
}

/// Strategy that resolves decision points. Implemented by the DFS,
/// seeded-random and replay choosers in `solero-mc`.
pub trait Chooser: Send {
    /// Returns the index of the option to take (`< d.options()`).
    fn choose(&mut self, d: &Decision) -> u32;
}

/// Per-execution limits and knobs.
#[derive(Clone, Debug)]
pub struct Opts {
    /// Abort (as a truncation, not a failure) after this many
    /// scheduling points. Bounds schedules that live-lock, e.g. a
    /// timed waiter firing its timeout in a loop.
    pub max_steps: u64,
    /// How many times each timed wait may wake by timeout before it is
    /// treated as an untimed wait. Timed waits are the protocol's
    /// liveness backstop (FLC re-checks); an unbounded model of them
    /// would branch forever.
    pub timeout_budget: u32,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            max_steps: 4_000,
            timeout_budget: 3,
        }
    }
}

/// Outcome of one execution under a chooser.
#[derive(Clone, Debug, Default)]
pub struct ExecResult {
    /// First invariant violation observed (assertion message, deadlock
    /// description, …). `None` for a clean or truncated execution.
    pub failure: Option<String>,
    /// Option index taken at every decision point, in order. Feeding
    /// this back through a replay chooser reproduces the execution.
    pub trace: Vec<u32>,
    /// The execution hit `max_steps` or exhausted every timeout budget
    /// and was cut short. Not a failure: the explored prefix is valid.
    pub truncated: bool,
    /// Scheduling points executed.
    pub steps: u64,
}

/// Renders a trace as the printed, replayable string form: option
/// indices joined by `.` (empty trace ⇒ `"-"`, an execution with no
/// choice at all).
pub fn format_trace(trace: &[u32]) -> String {
    if trace.is_empty() {
        "-".to_string()
    } else {
        trace
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(".")
    }
}

/// Parses the string form produced by [`format_trace`].
pub fn parse_trace(s: &str) -> Result<Vec<u32>, String> {
    let s = s.trim();
    if s.is_empty() || s == "-" {
        return Ok(Vec::new());
    }
    s.split('.')
        .map(|part| {
            part.parse::<u32>()
                .map_err(|e| format!("bad trace element {part:?}: {e}"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_roundtrip() {
        for t in [vec![], vec![0], vec![3, 0, 1, 2, 10]] {
            assert_eq!(parse_trace(&format_trace(&t)).unwrap(), t);
        }
    }

    #[test]
    fn empty_trace_prints_dash() {
        assert_eq!(format_trace(&[]), "-");
        assert_eq!(parse_trace("-").unwrap(), Vec::<u32>::new());
        assert_eq!(parse_trace("").unwrap(), Vec::<u32>::new());
    }

    #[test]
    fn bad_trace_reports_element() {
        let err = parse_trace("1.x.2").unwrap_err();
        assert!(err.contains("\"x\""), "{err}");
    }

    #[test]
    fn decision_option_counts() {
        let t = Decision::Thread {
            current: 0,
            enabled: vec![0, 2],
        };
        assert_eq!(t.options(), 2);
        assert_eq!(Decision::Value { candidates: 3 }.options(), 3);
    }
}
