//! Cooperative virtual-thread runtime (compiled under `--cfg solero_mc`).
//!
//! One *execution* runs a scenario closure on a set of virtual threads
//! (each backed by a real OS thread, but exactly one runnable at a
//! time). Every instrumented operation ([`crate::shim`]) is a
//! *scheduling point*: the runtime consults the [`Chooser`] for which
//! virtual thread runs next, and — for `Relaxed` loads — which store
//! the load observes. Because the scenario is deterministic given those
//! choices, the recorded choice list (the *trace*) replays the
//! execution exactly.
//!
//! ## Memory model
//!
//! Sequential consistency for everything except `Relaxed` loads, which
//! may observe stale stores: each location keeps a bounded store
//! history with the storing thread's vector clock, and a `Relaxed`
//! load branches over every store newer than both (a) the newest store
//! that happens-before the loader and (b) anything the loader already
//! observed at that location (per-thread coherence floor, which also
//! guarantees a thread reads its own writes). This is deliberately a
//! *subset* of C++11 weak behaviours — enough to catch an
//! acquire→relaxed weakening on the SOLERO exit validation — not a
//! full axiomatic model (see DESIGN.md §9 and the ROADMAP).
//!
//! ## Blocking
//!
//! Shimmed `Mutex`/`Condvar` block *in the model*: a blocked virtual
//! thread is simply not enabled. Untimed condvar waits are enabled
//! only once notified; timed waits may additionally fire their timeout
//! up to [`Opts::timeout_budget`] times (the protocol uses timed waits
//! as a liveness backstop, so an exhausted budget makes the execution
//! a *truncation*, never a reported deadlock). A real deadlock — no
//! enabled thread and no exhausted timed waiter — is a failure.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::{
    Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, PoisonError,
};

use crate::model::{
    AccessKind, Chooser, Decision, ExecResult, Opts, StepRec, FLUSH_BASE, MAX_THREADS,
};

/// Panic payload used to tear a virtual thread down once the execution
/// aborted (failure found, or truncation). Never reported as a panic.
pub struct McAbort;

fn teardown() -> ! {
    std::panic::panic_any(McAbort)
}

// ---------------------------------------------------------------- clocks

/// Fixed-width vector clock, one component per virtual-thread slot.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct VClock([u32; MAX_THREADS]);

impl VClock {
    fn join(&mut self, other: &VClock) {
        for i in 0..MAX_THREADS {
            self.0[i] = self.0[i].max(other.0[i]);
        }
    }
    fn le(&self, other: &VClock) -> bool {
        (0..MAX_THREADS).all(|i| self.0[i] <= other.0[i])
    }
    fn tick(&mut self, me: usize) {
        self.0[me] += 1;
    }
}

// ------------------------------------------------------------- locations

/// Cap on the per-location store history. Older stores fall off the
/// front (raising every reader's floor), which bounds both memory and
/// the `Relaxed`-load branching factor late in an execution.
const STORE_CAP: usize = 16;

struct StoreRec {
    val: u64,
    clock: VClock,
    release: bool,
}

/// Cap on a single thread's store buffer under the weak-memory mode.
/// A buffer past this depth force-flushes its oldest entry — real
/// store buffers are a few dozen entries, and an unbounded model would
/// let a store-only loop grow state without ever committing anything.
const STORE_BUFFER_CAP: usize = 16;

/// Weak-memory mode: one store sitting in a thread's FIFO store
/// buffer, not yet visible to any other thread. The clock is captured
/// at issue time (program order), not at flush time — flushing later
/// must not acquire anything the owner learned in between.
struct BufferedStore {
    addr: usize,
    val: u64,
    release: bool,
    clock: VClock,
}

struct LocState {
    /// Absolute index of `stores[0]` (history may be truncated).
    base: usize,
    stores: Vec<StoreRec>,
    /// Per-thread coherence floor: absolute index of the newest store
    /// this thread has observed (read from or written) here.
    seen: [usize; MAX_THREADS],
}

impl LocState {
    fn latest_abs(&self) -> usize {
        self.base + self.stores.len() - 1
    }
    fn rec(&self, abs: usize) -> &StoreRec {
        &self.stores[abs - self.base]
    }
}

// --------------------------------------------------------------- threads

#[derive(Clone, Debug, PartialEq, Eq)]
enum TState {
    Runnable,
    /// Waiting for the mutex keyed by this address to be free.
    BlockedMutex(usize),
    /// Parked on a condvar; `timed` waits can fire their timeout.
    BlockedCv { timed: bool },
    /// Waiting for the slot to finish.
    BlockedJoin(usize),
    Finished,
}

struct ThreadSlot {
    state: TState,
    clock: VClock,
    /// Set by notify; consumed by the waiter on wake.
    wake_notified: bool,
    /// Remaining timeout fires for timed waits.
    timeout_budget: u32,
}

struct MutexMeta {
    owner: Option<usize>,
}

#[derive(Default)]
struct CvMeta {
    /// FIFO wait queue of slots.
    waiters: Vec<usize>,
}

// ----------------------------------------------------------- shared state

struct Inner {
    opts: Opts,
    chooser: Box<dyn Chooser>,
    trace: Vec<u32>,
    threads: Vec<ThreadSlot>,
    os_handles: Vec<Option<std::thread::JoinHandle<()>>>,
    active: usize,
    live: usize,
    steps: u64,
    abort: bool,
    truncated: bool,
    failure: Option<String>,
    locations: HashMap<usize, LocState>,
    mutexes: HashMap<usize, MutexMeta>,
    condvars: HashMap<usize, CvMeta>,
    /// Weak-memory mode: per-thread FIFO store buffers, indexed in
    /// lockstep with `threads`. Always empty when `opts.weak_memory`
    /// is off.
    buffers: Vec<Vec<BufferedStore>>,
    /// Trace index of the most recent *consulted* scheduling decision,
    /// or `None` when the last scheduling point had a single enabled
    /// thread. Operations record it so the DPOR analysis knows which
    /// decision node to target with a backtrack insertion.
    last_decision: Option<u32>,
    /// Per-step access log for the DPOR dependence analysis.
    accesses: Vec<StepRec>,
}

struct Shared {
    inner: StdMutex<Inner>,
    cv: StdCondvar,
}

fn lock_inner(shared: &Shared) -> StdMutexGuard<'_, Inner> {
    shared.inner.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Per-OS-thread handle into the execution it belongs to.
#[derive(Clone)]
pub(crate) struct Ctx {
    shared: Arc<Shared>,
    me: usize,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// The calling OS thread's virtual-thread context, if it is part of an
/// execution *and* not currently unwinding. During an unwind every
/// shim operation degrades to its plain `std` form so that destructors
/// never re-enter the scheduler.
pub(crate) fn cur_ctx() -> Option<Ctx> {
    if std::thread::panicking() {
        return None;
    }
    CTX.with(|c| c.borrow().clone())
}

impl Inner {
    fn enabled(&self, i: usize) -> bool {
        let t = &self.threads[i];
        match &t.state {
            TState::Runnable => true,
            TState::BlockedMutex(m) => self
                .mutexes
                .get(m)
                .map_or(true, |meta| meta.owner.is_none()),
            TState::BlockedCv { timed } => {
                t.wake_notified || (*timed && t.timeout_budget > 0)
            }
            TState::BlockedJoin(target) => {
                matches!(self.threads[*target].state, TState::Finished)
            }
            TState::Finished => false,
        }
    }

    fn enabled_list(&self) -> Vec<u32> {
        let mut enabled: Vec<u32> = (0..self.threads.len())
            .filter(|&i| self.enabled(i))
            .map(|i| i as u32)
            .collect();
        if self.opts.weak_memory {
            // A non-empty store buffer contributes a flush pseudo-option:
            // "make thread t's oldest buffered store globally visible".
            // Listed after the real slots so replayed option indices stay
            // stable whichever threads are blocked.
            enabled.extend(
                (0..self.buffers.len())
                    .filter(|&t| !self.buffers[t].is_empty())
                    .map(|t| (FLUSH_BASE + t) as u32),
            );
        }
        enabled
    }

    fn fail(&mut self, msg: String) {
        if self.failure.is_none() {
            self.failure = Some(msg);
        }
        self.abort = true;
    }

    fn describe_states(&self) -> String {
        self.threads
            .iter()
            .enumerate()
            .map(|(i, t)| format!("t{i}={:?}", t.state))
            .collect::<Vec<_>>()
            .join(", ")
    }

    /// Hands the CPU to `slot`, updating whatever its blocked state was
    /// waiting for.
    fn grant(&mut self, slot: usize) {
        match self.threads[slot].state.clone() {
            TState::Runnable => {}
            TState::BlockedMutex(m) => {
                let meta = self.mutexes.get_mut(&m).expect("blocked on unknown mutex");
                debug_assert!(meta.owner.is_none(), "granted a held mutex");
                meta.owner = Some(slot);
                self.threads[slot].state = TState::Runnable;
            }
            TState::BlockedCv { .. } => {
                if !self.threads[slot].wake_notified {
                    // Timeout fire (the only other way a timed wait is
                    // enabled); spend one budget unit.
                    let b = &mut self.threads[slot].timeout_budget;
                    *b = b.saturating_sub(1);
                }
                self.threads[slot].state = TState::Runnable;
            }
            TState::BlockedJoin(_) => {
                self.threads[slot].state = TState::Runnable;
            }
            TState::Finished => unreachable!("granting a finished thread"),
        }
        self.active = slot;
    }

    /// One scheduling point: decides who runs next (consulting the
    /// chooser when there is a real choice) and grants it. `Err` means
    /// the execution is over (abort/truncation/deadlock) and the caller
    /// must tear down.
    ///
    /// Under the weak-memory mode a decision may instead pick a flush
    /// pseudo-option (`FLUSH_BASE + t`); the flush is applied inline
    /// and the scheduling point repeats until a real thread is chosen,
    /// so a single `yield_now` can interleave any number of other
    /// threads' store commits before the caller's operation.
    fn pick_next(&mut self, me: usize) -> Result<usize, ()> {
        loop {
            self.steps += 1;
            if self.steps > self.opts.max_steps {
                self.truncated = true;
                self.abort = true;
                return Err(());
            }
            let enabled = self.enabled_list();
            if enabled.is_empty() {
                if self.live == 0 {
                    return Err(());
                }
                let budget_exhausted = self.threads.iter().any(|t| {
                    matches!(t.state, TState::BlockedCv { timed: true })
                        && t.timeout_budget == 0
                        && !t.wake_notified
                });
                if budget_exhausted {
                    // A timed wait would eventually fire in reality; the
                    // model just stops exploring this schedule.
                    self.truncated = true;
                } else {
                    self.fail(format!(
                        "deadlock: no enabled virtual thread ({})",
                        self.describe_states()
                    ));
                }
                self.abort = true;
                return Err(());
            }
            let choice = if enabled.len() > 1 {
                let d = Decision::Thread {
                    current: me as u32,
                    enabled: enabled.clone(),
                };
                let idx = self.chooser.choose(&d);
                assert!(
                    (idx as usize) < enabled.len(),
                    "chooser picked option {idx} of {}",
                    enabled.len()
                );
                self.trace.push(idx);
                self.last_decision = Some((self.trace.len() - 1) as u32);
                enabled[idx as usize] as usize
            } else {
                self.last_decision = None;
                enabled[0] as usize
            };
            if choice >= FLUSH_BASE {
                self.flush_one(choice - FLUSH_BASE);
                continue;
            }
            self.grant(choice);
            return Ok(choice);
        }
    }

    /// Commits the oldest buffered store of thread `owner` to memory.
    /// The recorded step carries the flush pseudo-thread id, so the
    /// DPOR dependence analysis can target the *flush* with a
    /// backtrack insertion independently of the owner's own steps.
    fn flush_one(&mut self, owner: usize) {
        let b = self.buffers[owner].remove(0);
        self.accesses.push(StepRec {
            thread: (FLUSH_BASE + owner) as u32,
            decision: self.last_decision,
            kind: AccessKind::StoreFlush,
            addr: b.addr,
        });
        let loc = self
            .locations
            .get_mut(&b.addr)
            .expect("buffered store to an unknown location");
        loc.stores.push(StoreRec {
            val: b.val,
            clock: b.clock,
            release: b.release,
        });
        if loc.stores.len() > STORE_CAP {
            let excess = loc.stores.len() - STORE_CAP;
            loc.stores.drain(..excess);
            loc.base += excess;
        }
        let latest = loc.latest_abs();
        loc.seen[owner] = loc.seen[owner].max(latest);
    }

    /// Forced full drain of thread `t`'s store buffer (RMW/CAS, `SeqCst`
    /// store/fence, `storeload_fence`, mutex/condvar ops, spawn, join
    /// of `t`). A program-order barrier, not a scheduler choice.
    fn drain_buffer(&mut self, t: usize) {
        while !self.buffers[t].is_empty() {
            self.flush_one(t);
        }
    }

    /// Appends one access record, attributed to the most recent
    /// consulted scheduling decision. Several operations may share a
    /// decision (e.g. an unlock performed before its scheduling point);
    /// that only makes the DPOR backtrack insertions conservative.
    fn record(&mut self, me: usize, kind: AccessKind, addr: usize) {
        self.accesses.push(StepRec {
            thread: me as u32,
            decision: self.last_decision,
            kind,
            addr,
        });
    }

    fn ensure_loc(&mut self, addr: usize, init: u64) -> &mut LocState {
        self.locations.entry(addr).or_insert_with(|| LocState {
            base: 0,
            stores: vec![StoreRec {
                val: init,
                clock: VClock::default(),
                release: true,
            }],
            seen: [0; MAX_THREADS],
        })
    }
}

// ------------------------------------------------------------ scheduling

fn park_until_active<'a>(
    ctx: &'a Ctx,
    mut g: StdMutexGuard<'a, Inner>,
) -> StdMutexGuard<'a, Inner> {
    loop {
        if g.abort {
            drop(g);
            teardown();
        }
        if g.active == ctx.me && matches!(g.threads[ctx.me].state, TState::Runnable) {
            return g;
        }
        g = ctx.shared.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
    }
}

/// Scheduling point while remaining runnable. On return the caller is
/// the active thread and still holds the execution lock, so the
/// operation it performs next is atomic with respect to the scheduler.
fn yield_now<'a>(ctx: &'a Ctx) -> StdMutexGuard<'a, Inner> {
    let mut g = lock_inner(&ctx.shared);
    if g.abort {
        drop(g);
        teardown();
    }
    match g.pick_next(ctx.me) {
        Err(()) => {
            ctx.shared.cv.notify_all();
            drop(g);
            teardown();
        }
        Ok(next) => {
            if next != ctx.me {
                ctx.shared.cv.notify_all();
                g = park_until_active(ctx, g);
            }
            g
        }
    }
}

/// Blocks the caller with `state` and parks until granted.
fn block_on<'a>(
    ctx: &'a Ctx,
    mut g: StdMutexGuard<'a, Inner>,
    state: TState,
) -> StdMutexGuard<'a, Inner> {
    g.threads[ctx.me].state = state;
    match g.pick_next(ctx.me) {
        Err(()) => {
            ctx.shared.cv.notify_all();
            drop(g);
            teardown();
        }
        Ok(_) => {
            ctx.shared.cv.notify_all();
            park_until_active(ctx, g)
        }
    }
}

fn consult(chooser: &mut Box<dyn Chooser>, trace: &mut Vec<u32>, d: Decision) -> u32 {
    let idx = chooser.choose(&d);
    assert!(idx < d.options(), "chooser picked {idx} of {}", d.options());
    trace.push(idx);
    idx
}

// ------------------------------------------------------------ atomic ops

pub(crate) fn atomic_load(ctx: &Ctx, addr: usize, init: u64, relaxed: bool) -> u64 {
    let mut g = yield_now(ctx);
    let me = ctx.me;
    g.ensure_loc(addr, init);
    g.record(
        me,
        if relaxed {
            AccessKind::LoadRelaxed
        } else {
            AccessKind::Load
        },
        addr,
    );
    if g.opts.weak_memory {
        // Store-to-load forwarding: a thread always observes its own
        // newest buffered store (TSO), bypassing memory entirely.
        if let Some(b) = g.buffers[me].iter().rev().find(|b| b.addr == addr) {
            return b.val;
        }
    }
    let my_clock = g.threads[me].clock.clone();
    let inner = &mut *g;
    let loc = inner.locations.get_mut(&addr).expect("just ensured");
    let latest = loc.latest_abs();
    if !relaxed {
        // SC approximation: non-relaxed loads observe the newest store;
        // acquiring from a release store joins the clocks.
        let rec_release = loc.rec(latest).release;
        let rec_clock = loc.rec(latest).clock.clone();
        let val = loc.rec(latest).val;
        loc.seen[me] = loc.seen[me].max(latest);
        if rec_release {
            inner.threads[me].clock.join(&rec_clock);
        }
        return val;
    }
    // Relaxed: branch over every store newer than the happens-before /
    // coherence floor.
    let mut floor = loc.seen[me].max(loc.base);
    for i in (0..loc.stores.len()).rev() {
        let abs = loc.base + i;
        if abs <= floor {
            break;
        }
        if loc.stores[i].clock.le(&my_clock) {
            floor = abs;
            break;
        }
    }
    let n = (latest - floor + 1) as u32;
    let chosen_abs = if n > 1 {
        let idx = consult(
            &mut inner.chooser,
            &mut inner.trace,
            Decision::Value { candidates: n },
        );
        floor + idx as usize
    } else {
        latest
    };
    let loc = inner.locations.get_mut(&addr).expect("just ensured");
    loc.seen[me] = loc.seen[me].max(chosen_abs);
    loc.rec(chosen_abs).val
}

pub(crate) fn atomic_store(
    ctx: &Ctx,
    addr: usize,
    init: u64,
    val: u64,
    release: bool,
    seq_cst: bool,
) {
    let mut g = yield_now(ctx);
    let me = ctx.me;
    g.ensure_loc(addr, init);
    if g.opts.weak_memory {
        // The store parks in the issuing thread's FIFO buffer; it
        // becomes a globally visible write only at its StoreFlush. The
        // clock is captured now — program order, not flush order.
        g.record(me, AccessKind::StoreBuffered, addr);
        g.threads[me].clock.tick(me);
        let clock = g.threads[me].clock.clone();
        g.buffers[me].push(BufferedStore {
            addr,
            val,
            release,
            clock,
        });
        if seq_cst || g.buffers[me].len() > STORE_BUFFER_CAP {
            // SeqCst stores drain (x86 `xchg`-like); overflow commits
            // the oldest entry to keep the model bounded.
            if seq_cst {
                g.drain_buffer(me);
            } else {
                g.flush_one(me);
            }
        }
        return;
    }
    g.record(me, AccessKind::Store, addr);
    g.threads[me].clock.tick(me);
    let clock = g.threads[me].clock.clone();
    let loc = g.locations.get_mut(&addr).expect("just ensured");
    loc.stores.push(StoreRec {
        val,
        clock,
        release,
    });
    if loc.stores.len() > STORE_CAP {
        let excess = loc.stores.len() - STORE_CAP;
        loc.stores.drain(..excess);
        loc.base += excess;
    }
    let latest = loc.latest_abs();
    loc.seen[me] = latest;
}

/// Read-modify-write: always acts on the newest store (RMWs read the
/// latest value in every C++11 execution), acquires it, and publishes
/// the result as a release store.
pub(crate) fn atomic_rmw(
    ctx: &Ctx,
    addr: usize,
    init: u64,
    f: impl FnOnce(u64) -> u64,
) -> u64 {
    let mut g = yield_now(ctx);
    let me = ctx.me;
    g.ensure_loc(addr, init);
    if g.opts.weak_memory {
        // Locked instruction: the buffer drains before the RMW reads.
        g.drain_buffer(me);
    }
    g.record(me, AccessKind::Rmw, addr);
    let (old, old_clock) = {
        let loc = g.locations.get_mut(&addr).expect("just ensured");
        let latest = loc.latest_abs();
        (loc.rec(latest).val, loc.rec(latest).clock.clone())
    };
    g.threads[me].clock.join(&old_clock);
    g.threads[me].clock.tick(me);
    let clock = g.threads[me].clock.clone();
    let loc = g.locations.get_mut(&addr).expect("just ensured");
    loc.stores.push(StoreRec {
        val: f(old),
        clock,
        release: true,
    });
    if loc.stores.len() > STORE_CAP {
        let excess = loc.stores.len() - STORE_CAP;
        loc.stores.drain(..excess);
        loc.base += excess;
    }
    let latest = loc.latest_abs();
    loc.seen[me] = latest;
    old
}

/// Compare-exchange against the newest store. Success behaves like an
/// RMW; failure is a load of the newest value.
pub(crate) fn atomic_cas(
    ctx: &Ctx,
    addr: usize,
    init: u64,
    current: u64,
    new: u64,
) -> Result<u64, u64> {
    let mut g = yield_now(ctx);
    let me = ctx.me;
    g.ensure_loc(addr, init);
    if g.opts.weak_memory {
        // Locked instruction even on failure: the buffer drains first.
        g.drain_buffer(me);
    }
    let (old, old_clock) = {
        let loc = g.locations.get_mut(&addr).expect("just ensured");
        let latest = loc.latest_abs();
        (loc.rec(latest).val, loc.rec(latest).clock.clone())
    };
    if old != current {
        g.record(me, AccessKind::CasFail, addr);
        let loc = g.locations.get_mut(&addr).expect("just ensured");
        let latest = loc.latest_abs();
        loc.seen[me] = loc.seen[me].max(latest);
        return Err(old);
    }
    g.record(me, AccessKind::CasSuccess, addr);
    g.threads[me].clock.join(&old_clock);
    g.threads[me].clock.tick(me);
    let clock = g.threads[me].clock.clone();
    let loc = g.locations.get_mut(&addr).expect("just ensured");
    loc.stores.push(StoreRec {
        val: new,
        clock,
        release: true,
    });
    if loc.stores.len() > STORE_CAP {
        let excess = loc.stores.len() - STORE_CAP;
        loc.stores.drain(..excess);
        loc.base += excess;
    }
    let latest = loc.latest_abs();
    loc.seen[me] = latest;
    Ok(old)
}

// ------------------------------------------------------------- fence ops

/// `atomic::fence(ord)` through the facade: a scheduling point the
/// explorer can see. Under the sequentially consistent base model the
/// fence itself adds nothing further; under the weak-memory mode a
/// `SeqCst` fence drains the issuing thread's store buffer (the only
/// ordering TSO is missing is Store→Load, and only a full fence
/// restores it — `Acquire`/`Release` fences are free on TSO).
pub(crate) fn fence_op(ctx: &Ctx, seq_cst: bool) {
    let mut g = yield_now(ctx);
    if seq_cst && g.opts.weak_memory {
        g.drain_buffer(ctx.me);
    }
    g.record(ctx.me, AccessKind::Fence, 0);
    drop(g);
}

/// The modeled Store→Load barrier (`storeload_fence`): recorded with
/// its own access kind so fence-sensitive scenarios can assert the
/// barrier was actually issued. Always a full drain — this is the §3.4
/// read-entry barrier whose whole job is store-buffer visibility.
pub(crate) fn storeload_fence_op(ctx: &Ctx) {
    let mut g = yield_now(ctx);
    if g.opts.weak_memory {
        g.drain_buffer(ctx.me);
    }
    g.record(ctx.me, AccessKind::StoreLoadFence, 0);
    drop(g);
}

// ------------------------------------------------------------- mutex ops

pub(crate) fn mutex_lock(ctx: &Ctx, addr: usize) {
    let mut g = yield_now(ctx);
    if g.opts.weak_memory {
        // Lock acquisition is an RMW on real hardware: full drain.
        g.drain_buffer(ctx.me);
    }
    let meta = g
        .mutexes
        .entry(addr)
        .or_insert(MutexMeta { owner: None });
    match meta.owner {
        None => meta.owner = Some(ctx.me),
        Some(o) if o == ctx.me => {
            g.fail(format!("virtual thread {} relocked a mutex it holds", ctx.me));
            ctx.shared.cv.notify_all();
            drop(g);
            teardown();
        }
        Some(_) => {
            g = block_on(ctx, g, TState::BlockedMutex(addr));
        }
    }
    g.record(ctx.me, AccessKind::MutexLock, addr);
    drop(g);
}

pub(crate) fn mutex_unlock(ctx: &Ctx, addr: usize) {
    let mut g = lock_inner(&ctx.shared);
    if g.abort {
        drop(g);
        teardown();
    }
    if g.opts.weak_memory {
        // Critical-section stores must be visible before the release.
        g.drain_buffer(ctx.me);
    }
    if let Some(meta) = g.mutexes.get_mut(&addr) {
        debug_assert_eq!(meta.owner, Some(ctx.me), "unlock by non-owner");
        meta.owner = None;
    }
    // The release acts before its scheduling point, so it shares the
    // previous operation's decision attribution (conservative for DPOR).
    g.record(ctx.me, AccessKind::MutexUnlock, addr);
    // Release is itself a scheduling point so a waiter can run next.
    match g.pick_next(ctx.me) {
        Err(()) => {
            ctx.shared.cv.notify_all();
            drop(g);
            teardown();
        }
        Ok(next) => {
            if next != ctx.me {
                ctx.shared.cv.notify_all();
                g = park_until_active(ctx, g);
            }
            drop(g);
        }
    }
}

// ----------------------------------------------------------- condvar ops

/// Parks on `cv_addr`, atomically (w.r.t. the scheduler) releasing the
/// model mutex `mx_addr`. The caller must have dropped the *real* std
/// guard already — nothing else can run between that drop and this
/// call, because the caller is the active thread throughout. Returns
/// `true` if the wake was a timeout rather than a notify. On return
/// the model mutex is re-acquired.
pub(crate) fn cv_wait(ctx: &Ctx, cv_addr: usize, mx_addr: usize, timed: bool) -> bool {
    let mut g = lock_inner(&ctx.shared);
    if g.abort {
        drop(g);
        teardown();
    }
    if g.opts.weak_memory {
        // Waiting releases the mutex: same visibility rule as unlock.
        g.drain_buffer(ctx.me);
    }
    let meta = g
        .mutexes
        .get_mut(&mx_addr)
        .expect("condvar wait without a locked mutex");
    debug_assert_eq!(meta.owner, Some(ctx.me), "wait by non-owner");
    meta.owner = None;
    g.record(ctx.me, AccessKind::CvWait, cv_addr);
    g.record(ctx.me, AccessKind::MutexUnlock, mx_addr);
    g.condvars.entry(cv_addr).or_default().waiters.push(ctx.me);
    g.threads[ctx.me].wake_notified = false;
    g = block_on(ctx, g, TState::BlockedCv { timed });
    g.record(ctx.me, AccessKind::CvWake, cv_addr);
    let notified = g.threads[ctx.me].wake_notified;
    g.threads[ctx.me].wake_notified = false;
    if !notified {
        // Timeout fire: we are still queued; leave the queue.
        if let Some(cvm) = g.condvars.get_mut(&cv_addr) {
            cvm.waiters.retain(|&w| w != ctx.me);
        }
    }
    // Cooperative mutex re-acquisition.
    let meta = g.mutexes.get_mut(&mx_addr).expect("mutex vanished");
    match meta.owner {
        None => meta.owner = Some(ctx.me),
        Some(_) => {
            g = block_on(ctx, g, TState::BlockedMutex(mx_addr));
        }
    }
    g.record(ctx.me, AccessKind::MutexLock, mx_addr);
    drop(g);
    !notified
}

pub(crate) fn cv_notify(ctx: &Ctx, cv_addr: usize, all: bool) {
    let mut g = yield_now(ctx);
    if g.opts.weak_memory {
        // Whatever was written before the notify must be visible to
        // the woken waiter.
        g.drain_buffer(ctx.me);
    }
    g.record(ctx.me, AccessKind::CvNotify, cv_addr);
    let inner = &mut *g;
    if let Some(cvm) = inner.condvars.get_mut(&cv_addr) {
        if all {
            for w in cvm.waiters.drain(..) {
                inner.threads[w].wake_notified = true;
            }
        } else if !cvm.waiters.is_empty() {
            let w = cvm.waiters.remove(0);
            inner.threads[w].wake_notified = true;
        }
    }
    drop(g);
}

// ------------------------------------------------------------ spawn/join

/// Handle to a spawned virtual thread.
pub struct JoinHandle<T> {
    slot: usize,
    result: Arc<StdMutex<Option<T>>>,
    shared: Arc<Shared>,
}

/// Spawns a virtual thread inside the current execution.
///
/// # Panics
///
/// Panics if called outside an execution or if the execution already
/// has [`MAX_THREADS`] virtual threads.
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let ctx = cur_ctx().expect("rt::spawn outside a model-checked execution");
    let result: Arc<StdMutex<Option<T>>> = Arc::new(StdMutex::new(None));
    let slot = {
        let mut g = lock_inner(&ctx.shared);
        if g.abort {
            drop(g);
            teardown();
        }
        let slot = g.threads.len();
        assert!(slot < MAX_THREADS, "execution exceeds {MAX_THREADS} virtual threads");
        if g.opts.weak_memory {
            // The child inherits the parent's clock; drain so it can
            // also *see* everything the parent wrote before the spawn.
            g.drain_buffer(ctx.me);
        }
        g.threads[ctx.me].clock.tick(ctx.me);
        let clock = g.threads[ctx.me].clock.clone();
        let budget = g.opts.timeout_budget;
        g.threads.push(ThreadSlot {
            state: TState::Runnable,
            clock,
            wake_notified: false,
            timeout_budget: budget,
        });
        g.live += 1;
        g.buffers.push(Vec::new());
        g.record(ctx.me, AccessKind::Spawn, slot);
        let shared2 = Arc::clone(&ctx.shared);
        let res2 = Arc::clone(&result);
        let os = std::thread::Builder::new()
            .name(format!("mc-vthread-{slot}"))
            .spawn(move || vthread_main(shared2, slot, f, res2))
            .expect("spawn vthread OS thread");
        g.os_handles.push(Some(os));
        drop(g);
        slot
    };
    // The child parks until a scheduling decision picks it; make one
    // now so "child runs first" is explored.
    drop(yield_now(&ctx));
    JoinHandle {
        slot,
        result,
        shared: Arc::clone(&ctx.shared),
    }
}

impl<T> JoinHandle<T> {
    /// Waits for the virtual thread to finish and returns its value.
    pub fn join(self) -> T {
        let ctx = cur_ctx().expect("rt::join outside a model-checked execution");
        debug_assert!(Arc::ptr_eq(&ctx.shared, &self.shared), "cross-execution join");
        let mut g = yield_now(&ctx);
        if !matches!(g.threads[self.slot].state, TState::Finished) {
            g = block_on(&ctx, g, TState::BlockedJoin(self.slot));
        }
        if g.opts.weak_memory {
            // A finished thread's residual buffer commits when someone
            // joins it (finish itself is deliberately *not* a drain: a
            // thread's last stores may stay invisible past its death,
            // which is exactly the §3.4 hazard the litmus tests need
            // reachable).
            g.drain_buffer(self.slot);
        }
        g.record(ctx.me, AccessKind::Join, self.slot);
        drop(g);
        let v = self
            .result
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        match v {
            Some(v) => v,
            // The child panicked; its wrapper recorded the failure and
            // set the abort flag, so just tear down.
            None => teardown(),
        }
    }
}

fn vthread_main<T, F>(
    shared: Arc<Shared>,
    me: usize,
    f: F,
    result: Arc<StdMutex<Option<T>>>,
) where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    CTX.with(|c| {
        *c.borrow_mut() = Some(Ctx {
            shared: Arc::clone(&shared),
            me,
        })
    });
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let ctx = cur_ctx().expect("ctx just installed");
        // Park until first scheduled (slot 0 is born active).
        let g = lock_inner(&ctx.shared);
        let g = park_until_active(&ctx, g);
        drop(g);
        f()
    }));
    CTX.with(|c| *c.borrow_mut() = None);
    let failure = match outcome {
        Ok(v) => {
            *result.lock().unwrap_or_else(PoisonError::into_inner) = Some(v);
            None
        }
        Err(payload) => {
            if payload.downcast_ref::<McAbort>().is_some() {
                None
            } else if let Some(s) = payload.downcast_ref::<String>() {
                Some(s.clone())
            } else if let Some(s) = payload.downcast_ref::<&str>() {
                Some((*s).to_string())
            } else {
                Some("virtual thread panicked with a non-string payload".to_string())
            }
        }
    };
    // Finish: mark the slot done and hand off.
    let mut g = lock_inner(&shared);
    g.threads[me].state = TState::Finished;
    g.live -= 1;
    if let Some(msg) = failure {
        g.fail(format!("virtual thread {me}: {msg}"));
    }
    if !g.abort && g.live > 0 {
        // Err just means the execution is over (deadlock/truncation
        // recorded); either way everyone must be woken below.
        let _ = g.pick_next(me);
    }
    drop(g);
    shared.cv.notify_all();
}

// -------------------------------------------------------------- executor

/// Runs `f` once as virtual thread 0 under `chooser`, returning the
/// outcome and the recorded trace. Blocks until every OS thread of the
/// execution has exited, so executions never overlap.
/// Installs (once per process) a panic hook that stays silent for the
/// [`McAbort`] teardown panics — they are control flow, and the default
/// hook would print one backtrace banner per torn-down thread per
/// truncated or failing execution. Real panics still go through the
/// The calling thread's stable virtual-thread index within the current
/// execution (root = 0, then spawn order), or `None` outside one.
///
/// Protocol code that hashes on thread identity (e.g. the BRAVO
/// visible-readers table) must key on this under the model checker
/// instead of a process-global thread id: OS-level ids grow
/// monotonically across the thousands of executions one search runs,
/// so hashing them would make slot choices — and therefore the explored
/// branch structure — differ between a discovery run and its replay.
pub fn vthread_slot() -> Option<usize> {
    cur_ctx().map(|ctx| ctx.me)
}

/// previously installed hook.
fn quiet_teardown_panics() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<McAbort>().is_none() {
                previous(info);
            }
        }));
    });
}

pub fn run_execution(
    opts: &Opts,
    chooser: Box<dyn Chooser>,
    f: Arc<dyn Fn() + Send + Sync>,
) -> ExecResult {
    quiet_teardown_panics();
    let shared = Arc::new(Shared {
        inner: StdMutex::new(Inner {
            opts: opts.clone(),
            chooser,
            trace: Vec::new(),
            threads: vec![ThreadSlot {
                state: TState::Runnable,
                clock: VClock::default(),
                wake_notified: false,
                timeout_budget: opts.timeout_budget,
            }],
            os_handles: Vec::new(),
            active: 0,
            live: 1,
            steps: 0,
            abort: false,
            truncated: false,
            failure: None,
            locations: HashMap::new(),
            mutexes: HashMap::new(),
            condvars: HashMap::new(),
            buffers: vec![Vec::new()],
            last_decision: None,
            accesses: Vec::new(),
        }),
        cv: StdCondvar::new(),
    });
    let shared2 = Arc::clone(&shared);
    let root_result: Arc<StdMutex<Option<()>>> = Arc::new(StdMutex::new(None));
    let root_res2 = Arc::clone(&root_result);
    let root = std::thread::Builder::new()
        .name("mc-vthread-0".to_string())
        .spawn(move || vthread_main(shared2, 0, move || f(), root_res2))
        .expect("spawn root vthread");
    {
        let mut g = lock_inner(&shared);
        while g.live > 0 {
            g = shared.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
    }
    let handles: Vec<_> = {
        let mut g = lock_inner(&shared);
        g.os_handles.iter_mut().map(|h| h.take()).collect()
    };
    let _ = root.join();
    for h in handles.into_iter().flatten() {
        let _ = h.join();
    }
    let g = lock_inner(&shared);
    ExecResult {
        failure: g.failure.clone(),
        trace: g.trace.clone(),
        truncated: g.truncated,
        steps: g.steps,
        accesses: g.accesses.clone(),
    }
}
