//! Instrumented drop-in replacements for the `std::sync` types the
//! protocol crates use (compiled under `--cfg solero_mc`).
//!
//! Each type keeps a *mirror* `std` primitive holding the current
//! value/data. Inside an execution, every operation first routes
//! through the scheduler ([`crate::rt`]) — a scheduling point plus the
//! model semantics (store histories, model mutex ownership, condvar
//! wait queues) — and then updates the mirror while still the only
//! running virtual thread. Outside an execution, or while the calling
//! thread is unwinding, operations degrade to the plain `std` form so
//! that setup code, drops and panic teardown never touch the
//! scheduler.

use std::mem::ManuallyDrop;
use std::ops::{Deref, DerefMut};
use std::sync::{
    Condvar as StdCondvar, LockResult, Mutex as StdMutex, MutexGuard as StdMutexGuard,
    PoisonError,
};
use std::time::Duration;

use crate::rt;

pub use std::sync::atomic::Ordering;

/// Instrumented `atomic::fence`: inside an execution it is a scheduling
/// point the checker records (and, under the weak-memory mode, a drain
/// point for `SeqCst`); outside it is the plain `std` fence.
pub fn fence(order: Ordering) {
    match rt::cur_ctx() {
        None => std::sync::atomic::fence(order),
        Some(ctx) => rt::fence_op(&ctx, matches!(order, Ordering::SeqCst)),
    }
}

/// Instrumented Store→Load barrier. The real implementation lives in
/// `solero-runtime::fence` (x86 `lock add [rsp], 0`); model-checked
/// builds route here so the scheduler sees the barrier instead of an
/// opaque asm block.
pub fn storeload_fence() {
    match rt::cur_ctx() {
        None => std::sync::atomic::fence(Ordering::SeqCst),
        Some(ctx) => rt::storeload_fence_op(&ctx),
    }
}

#[inline]
fn is_relaxed(o: Ordering) -> bool {
    matches!(o, Ordering::Relaxed)
}

#[inline]
fn is_release(o: Ordering) -> bool {
    matches!(o, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

macro_rules! mc_atomic {
    ($name:ident, $prim:ty, $std:ty) => {
        /// Model-checked atomic; see the module docs.
        pub struct $name {
            mirror: $std,
        }

        impl $name {
            pub const fn new(v: $prim) -> Self {
                Self {
                    mirror: <$std>::new(v),
                }
            }

            #[inline]
            fn addr(&self) -> usize {
                self as *const _ as usize
            }

            #[inline]
            fn init(&self) -> u64 {
                self.mirror.load(Ordering::Relaxed) as u64
            }

            pub fn load(&self, order: Ordering) -> $prim {
                match rt::cur_ctx() {
                    None => self.mirror.load(order),
                    Some(ctx) => {
                        rt::atomic_load(&ctx, self.addr(), self.init(), is_relaxed(order))
                            as $prim
                    }
                }
            }

            pub fn store(&self, val: $prim, order: Ordering) {
                match rt::cur_ctx() {
                    None => self.mirror.store(val, order),
                    Some(ctx) => {
                        rt::atomic_store(
                            &ctx,
                            self.addr(),
                            self.init(),
                            val as u64,
                            is_release(order),
                            matches!(order, Ordering::SeqCst),
                        );
                        self.mirror.store(val, Ordering::SeqCst);
                    }
                }
            }

            pub fn swap(&self, val: $prim, order: Ordering) -> $prim {
                match rt::cur_ctx() {
                    None => self.mirror.swap(val, order),
                    Some(ctx) => {
                        let old =
                            rt::atomic_rmw(&ctx, self.addr(), self.init(), |_| val as u64);
                        self.mirror.store(val, Ordering::SeqCst);
                        old as $prim
                    }
                }
            }

            pub fn fetch_add(&self, val: $prim, order: Ordering) -> $prim {
                match rt::cur_ctx() {
                    None => self.mirror.fetch_add(val, order),
                    Some(ctx) => {
                        let old = rt::atomic_rmw(&ctx, self.addr(), self.init(), |o| {
                            (o as $prim).wrapping_add(val) as u64
                        });
                        let old = old as $prim;
                        self.mirror.store(old.wrapping_add(val), Ordering::SeqCst);
                        old
                    }
                }
            }

            pub fn fetch_sub(&self, val: $prim, order: Ordering) -> $prim {
                match rt::cur_ctx() {
                    None => self.mirror.fetch_sub(val, order),
                    Some(ctx) => {
                        let old = rt::atomic_rmw(&ctx, self.addr(), self.init(), |o| {
                            (o as $prim).wrapping_sub(val) as u64
                        });
                        let old = old as $prim;
                        self.mirror.store(old.wrapping_sub(val), Ordering::SeqCst);
                        old
                    }
                }
            }

            pub fn compare_exchange(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                match rt::cur_ctx() {
                    None => self.mirror.compare_exchange(current, new, success, failure),
                    Some(ctx) => {
                        let r = rt::atomic_cas(
                            &ctx,
                            self.addr(),
                            self.init(),
                            current as u64,
                            new as u64,
                        );
                        match r {
                            Ok(old) => {
                                self.mirror.store(new, Ordering::SeqCst);
                                Ok(old as $prim)
                            }
                            Err(old) => Err(old as $prim),
                        }
                    }
                }
            }

            /// Modelled with strong semantics (no spurious failure);
            /// every weak-CAS behaviour is a subset of the strong one
            /// plus a retry the surrounding loop already performs.
            pub fn compare_exchange_weak(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                self.compare_exchange(current, new, success, failure)
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.debug_tuple(stringify!($name))
                    .field(&self.mirror.load(Ordering::Relaxed))
                    .finish()
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new(0)
            }
        }
    };
}

mc_atomic!(AtomicU64, u64, std::sync::atomic::AtomicU64);
mc_atomic!(AtomicUsize, usize, std::sync::atomic::AtomicUsize);

// ----------------------------------------------------------------- mutex

/// Model-checked mutex; see the module docs.
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(t: T) -> Self {
        Self {
            inner: StdMutex::new(t),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    #[inline]
    fn addr(&self) -> usize {
        self as *const _ as *const () as usize
    }

    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        match rt::cur_ctx() {
            None => {
                let g = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
                Ok(MutexGuard {
                    std: ManuallyDrop::new(g),
                    mx: self,
                    tracked: false,
                })
            }
            Some(ctx) => {
                rt::mutex_lock(&ctx, self.addr());
                // Model ownership is exclusive, so the real lock is
                // uncontended here.
                let g = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
                Ok(MutexGuard {
                    std: ManuallyDrop::new(g),
                    mx: self,
                    tracked: true,
                })
            }
        }
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

/// Guard for [`Mutex`]. Releases the real lock first, then tells the
/// scheduler — between the two nothing else can run, because the
/// dropping thread is still the active virtual thread.
pub struct MutexGuard<'a, T: ?Sized> {
    std: ManuallyDrop<StdMutexGuard<'a, T>>,
    mx: &'a Mutex<T>,
    tracked: bool,
}

impl<'a, T: ?Sized> MutexGuard<'a, T> {
    fn into_parts(mut self) -> (StdMutexGuard<'a, T>, &'a Mutex<T>, bool) {
        // SAFETY: `self` is forgotten immediately, so the guard is
        // dropped exactly once (by the caller).
        let std = unsafe { ManuallyDrop::take(&mut self.std) };
        let mx = self.mx;
        let tracked = self.tracked;
        std::mem::forget(self);
        (std, mx, tracked)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.std
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.std
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // SAFETY: drop runs once; the field is never touched again.
        unsafe { ManuallyDrop::drop(&mut self.std) };
        if self.tracked {
            if let Some(ctx) = rt::cur_ctx() {
                rt::mutex_unlock(&ctx, self.mx.addr());
            }
            // else: unwinding (abort teardown). The model owner stays
            // set; threads blocked on it are woken by the abort.
        }
    }
}

// --------------------------------------------------------------- condvar

/// Result of a timed wait. `std`'s equivalent has no public
/// constructor, hence this mirror type.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Model-checked condition variable; see the module docs.
pub struct Condvar {
    std: StdCondvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Self {
            std: StdCondvar::new(),
        }
    }

    #[inline]
    fn addr(&self) -> usize {
        self as *const _ as usize
    }

    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        match rt::cur_ctx() {
            None => {
                let (std, mx, tracked) = guard.into_parts();
                let g = self.std.wait(std).unwrap_or_else(PoisonError::into_inner);
                Ok(MutexGuard {
                    std: ManuallyDrop::new(g),
                    mx,
                    tracked,
                })
            }
            Some(ctx) => {
                let (std, mx, tracked) = guard.into_parts();
                drop(std);
                rt::cv_wait(&ctx, self.addr(), mx.addr(), false);
                let g = mx.inner.lock().unwrap_or_else(PoisonError::into_inner);
                Ok(MutexGuard {
                    std: ManuallyDrop::new(g),
                    mx,
                    tracked,
                })
            }
        }
    }

    /// The duration is ignored under the model: a timed wait may fire
    /// its timeout whenever scheduled, up to the per-thread budget.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        match rt::cur_ctx() {
            None => {
                let (std, mx, tracked) = guard.into_parts();
                let (g, r) = self
                    .std
                    .wait_timeout(std, dur)
                    .unwrap_or_else(PoisonError::into_inner);
                Ok((
                    MutexGuard {
                        std: ManuallyDrop::new(g),
                        mx,
                        tracked,
                    },
                    WaitTimeoutResult(r.timed_out()),
                ))
            }
            Some(ctx) => {
                let (std, mx, tracked) = guard.into_parts();
                drop(std);
                let timed_out = rt::cv_wait(&ctx, self.addr(), mx.addr(), true);
                let g = mx.inner.lock().unwrap_or_else(PoisonError::into_inner);
                Ok((
                    MutexGuard {
                        std: ManuallyDrop::new(g),
                        mx,
                        tracked,
                    },
                    WaitTimeoutResult(timed_out),
                ))
            }
        }
    }

    pub fn notify_one(&self) {
        match rt::cur_ctx() {
            None => self.std.notify_one(),
            Some(ctx) => rt::cv_notify(&ctx, self.addr(), false),
        }
    }

    pub fn notify_all(&self) {
        match rt::cur_ctx() {
            None => self.std.notify_all(),
            Some(ctx) => rt::cv_notify(&ctx, self.addr(), true),
        }
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}
