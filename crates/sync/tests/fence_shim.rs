//! Regression test: fences issued through the facade are visible to
//! the cooperative scheduler as `StepRec`s.
//!
//! Before the facade routed `fence`/`storeload_fence` through the shim,
//! protocol barriers (notably the §3.4 read-entry Store→Load fence)
//! compiled straight to the std intrinsic / inline asm and vanished
//! from the model — the checker could not distinguish a `Strong` from a
//! `Weak` barrier configuration at all.
#![cfg(solero_mc)]

use solero_sync::atomic::{fence, AtomicU64, Ordering};
use solero_sync::model::{AccessKind, Chooser, Decision, Opts};
use solero_sync::rt::run_execution;

/// Always takes option 0 — a single deterministic schedule is enough
/// here; we only care that the records exist.
struct First;

impl Chooser for First {
    fn choose(&mut self, _d: &Decision) -> u32 {
        0
    }
}

#[test]
fn shim_fences_emit_step_records() {
    let result = run_execution(
        &Opts::default(),
        Box::new(First),
        std::sync::Arc::new(|| {
            let x = AtomicU64::new(0);
            x.store(1, Ordering::Release);
            fence(Ordering::SeqCst);
            fence(Ordering::Acquire);
            solero_sync::shim::storeload_fence();
            assert_eq!(x.load(Ordering::Acquire), 1);
        }),
    );
    assert_eq!(result.failure, None, "{:?}", result.failure);
    assert!(!result.truncated);

    let fences = result
        .accesses
        .iter()
        .filter(|s| s.kind == AccessKind::Fence)
        .count();
    assert_eq!(fences, 2, "both facade fences must be recorded");
    let sl = result
        .accesses
        .iter()
        .filter(|s| s.kind == AccessKind::StoreLoadFence)
        .count();
    assert_eq!(sl, 1, "storeload_fence must be recorded");

    // Fence records carry no location: addr 0 in the fence space.
    for s in &result.accesses {
        if matches!(s.kind, AccessKind::Fence | AccessKind::StoreLoadFence) {
            assert_eq!(s.addr, 0);
            assert!(!s.kind.is_read_class() && !s.kind.is_write_class());
        }
    }
}

#[test]
fn fence_outside_scheduler_degrades_to_std() {
    // Off the model-checked runtime (no ctx), the shim must fall back
    // to the real std fence instead of panicking.
    fence(Ordering::SeqCst);
    solero_sync::shim::storeload_fence();
}
