//! The conventional Java lock implementation — the paper's baseline
//! `Lock`.
//!
//! Java's `synchronized` is implemented with a *bi-modal* ("tasuki")
//! lock: a one-word **thin** (flat) lock acquired with a single CAS, that
//! **inflates** into a **fat** lock backed by an OS monitor when
//! contention persists, and **deflates** back when contention subsides.
//! SOLERO (the `solero` crate) extends exactly this design, so the two
//! implementations share the runtime substrate and differ only in the
//! word layout and the read-only paths — mirroring the paper, where
//! SOLERO "can coexist with bi-modal locking mechanisms" and replaces
//! the conventional implementation.
//!
//! # Examples
//!
//! ```
//! use solero_tasuki::TasukiLock;
//! use std::sync::Arc;
//!
//! let lock = Arc::new(TasukiLock::new());
//! let l2 = Arc::clone(&lock);
//! let t = std::thread::spawn(move || {
//!     let _g = l2.lock();
//!     // exclusive access
//! });
//! {
//!     let _g = lock.lock();
//! }
//! t.join().unwrap();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod lock;

pub use lock::{TasukiGuard, TasukiLock};
