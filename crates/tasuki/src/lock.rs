//! The conventional bi-modal (tasuki) lock — the paper's baseline `Lock`.
//!
//! Fast paths follow the paper's Figure 2 exactly:
//!
//! * **acquire**: load the word; if zero, CAS in `tid << 8`; otherwise
//!   take the slow path (recursion, contention, or fat mode);
//! * **release**: if `(word & 0xff) == 0` (thin, recursion 0, no FLC,
//!   not inflated) store zero; otherwise take the slow path.
//!
//! Contention on a flat lock is resolved with the three-tier loops of
//! Figure 3; when they are exhausted (or the word shows FLC/inflation)
//! the thread moves to the OS monitor, sets the FLC bit, and waits; a
//! woken contender inflates the lock. Uncontended fat locks deflate back
//! to thin on release — the tasuki bidirectional transfer.

use solero_sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use solero_obs::{EventKind, LockEvent};
use solero_runtime::osmonitor::{next_lock_gen, MonitorKey, MonitorTable, OsMonitor};
use solero_runtime::spin::{Probe, SpinConfig};
use solero_runtime::stats::LockStats;
use solero_runtime::thread::ThreadId;
use solero_runtime::word::{ConvWord, CONV_RECURSION_MAX, CONV_RECURSION_STEP};

/// How long an FLC waiter parks before re-checking the word (guards
/// against the fast-release/FLC race; see `OsMonitor::wait_timeout`).
const FLC_RECHECK: Duration = Duration::from_millis(1);

/// The conventional Java monitor lock (mutual exclusion, reentrant,
/// bi-modal).
///
/// # Examples
///
/// ```
/// use solero_tasuki::TasukiLock;
///
/// let lock = TasukiLock::new();
/// let guard = lock.lock();
/// // ... critical section ...
/// drop(guard);
/// assert!(!lock.is_locked());
/// ```
#[derive(Debug)]
pub struct TasukiLock {
    word: AtomicU64,
    spin: SpinConfig,
    stats: LockStats,
    /// Process-unique generation nonce; paired with the word address to
    /// key the monitor table, so address reuse never aliases monitors.
    gen: u64,
}

impl Default for TasukiLock {
    fn default() -> Self {
        Self::new()
    }
}

/// RAII guard returned by [`TasukiLock::lock`].
#[derive(Debug)]
pub struct TasukiGuard<'a> {
    lock: &'a TasukiLock,
    tid: ThreadId,
}

impl Drop for TasukiGuard<'_> {
    fn drop(&mut self) {
        self.lock.exit(self.tid);
    }
}

impl TasukiLock {
    /// Creates an unlocked lock with default spin tiers.
    pub fn new() -> Self {
        Self::with_spin(SpinConfig::default())
    }

    /// Creates an unlocked lock with the given contention tiers.
    pub fn with_spin(spin: SpinConfig) -> Self {
        TasukiLock {
            word: AtomicU64::new(0),
            spin,
            stats: LockStats::default(),
            gen: next_lock_gen(),
        }
    }

    /// Acquires the lock, returning a guard that releases it on drop.
    pub fn lock(&self) -> TasukiGuard<'_> {
        let tid = ThreadId::current();
        self.enter(tid);
        TasukiGuard { lock: self, tid }
    }

    /// Per-lock statistics counters.
    pub fn stats(&self) -> &LockStats {
        &self.stats
    }

    /// True if any thread holds the lock (thin or fat).
    pub fn is_locked(&self) -> bool {
        let w = ConvWord(self.word.load(Ordering::Acquire));
        if w.is_inflated() {
            // Lookup-only: an absent entry means a deflation is mid-
            // publish, and a fresh monitor would be unowned anyway.
            self.monitor_existing().is_some_and(|m| m.is_owned())
        } else {
            w.is_held_flat()
        }
    }

    /// True if the calling thread holds the lock.
    pub fn held_by_current(&self) -> bool {
        self.holds(ThreadId::current())
    }

    /// True if `tid` holds the lock.
    pub fn holds(&self, tid: ThreadId) -> bool {
        let w = ConvWord(self.word.load(Ordering::Acquire));
        if w.is_inflated() {
            self.monitor_existing().is_some_and(|m| m.owned_by(tid))
        } else {
            w.tid() == Some(tid)
        }
    }

    /// True if the lock is currently in fat (inflated) mode.
    pub fn is_inflated(&self) -> bool {
        ConvWord(self.word.load(Ordering::Acquire)).is_inflated()
    }

    /// The current raw word (diagnostics and tests).
    pub fn raw_word(&self) -> ConvWord {
        ConvWord(self.word.load(Ordering::Acquire))
    }

    /// Identity of this lock in the global monitor table: word address
    /// plus the construction-time generation nonce. Public so table-
    /// hygiene tests can observe residency per lock.
    pub fn monitor_key(&self) -> MonitorKey {
        MonitorKey::new(&self.word as *const _ as usize, self.gen)
    }

    /// True if the global monitor table currently holds an entry for
    /// this lock (inflated, or a narrow race window).
    pub fn monitor_resident(&self) -> bool {
        MonitorTable::global().existing(self.monitor_key()).is_some()
    }

    #[inline]
    fn obs_id(&self) -> u64 {
        self.monitor_key().addr as u64
    }

    /// Get-or-create resolution; only held-lock paths (inflation of a
    /// held word, wait re-entry) may call this.
    fn monitor(&self) -> std::sync::Arc<OsMonitor> {
        MonitorTable::global().monitor_for(self.monitor_key())
    }

    /// Lookup-only resolution for reactive paths; `None` means the lock
    /// is not inflated and the caller must fall back to the word.
    fn monitor_existing(&self) -> Option<std::sync::Arc<OsMonitor>> {
        MonitorTable::global().existing(self.monitor_key())
    }

    /// Acquires the lock on behalf of `tid` (explicit form used by the
    /// interpreter; prefer [`TasukiLock::lock`]).
    pub fn enter(&self, tid: ThreadId) {
        self.stats.write_enters.fetch_add(1, Ordering::Relaxed);
        // Figure 2, lines 1–11.
        let v = ConvWord(self.word.load(Ordering::Relaxed));
        if v.is_zero()
            && self
                .word
                .compare_exchange(0, ConvWord::held_by(tid).raw(), Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
        {
            self.stats.write_fast.fetch_add(1, Ordering::Relaxed);
            solero_obs::emit(|| {
                LockEvent::now(self.obs_id(), EventKind::WriteAcquire)
            });
            return;
        }
        self.slow_enter(tid);
        solero_obs::emit(|| LockEvent::now(self.obs_id(), EventKind::WriteAcquire));
    }

    /// Acquires the lock for a section known to be read-only.
    /// Synchronization is identical to [`TasukiLock::enter`] — mutual
    /// exclusion cannot exploit read-onlyness — only the statistics
    /// classification differs (Table 1 read-only ratios).
    pub fn enter_read(&self, tid: ThreadId) {
        self.stats.read_enters.fetch_add(1, Ordering::Relaxed);
        let v = ConvWord(self.word.load(Ordering::Relaxed));
        if v.is_zero()
            && self
                .word
                .compare_exchange(0, ConvWord::held_by(tid).raw(), Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
        {
            solero_obs::emit(|| {
                LockEvent::now(self.obs_id(), EventKind::ReadAcquire)
            });
            return;
        }
        self.slow_enter(tid);
        solero_obs::emit(|| LockEvent::now(self.obs_id(), EventKind::ReadAcquire));
    }

    /// Releases one level of the lock on behalf of `tid`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `tid` does not hold the lock.
    pub fn exit(&self, tid: ThreadId) {
        solero_obs::emit(|| LockEvent::now(self.obs_id(), EventKind::Release));
        // Figure 2, lines 13–17.
        let v = ConvWord(self.word.load(Ordering::Relaxed));
        if v.fast_releasable() {
            debug_assert_eq!(v.tid(), Some(tid), "release by non-owner");
            self.word.store(0, Ordering::Release);
            return;
        }
        self.slow_exit(tid, v);
    }

    #[cold]
    fn slow_enter(&self, tid: ThreadId) {
        loop {
            let v = ConvWord(self.word.load(Ordering::Acquire));
            // Recursive flat acquisition.
            if !v.is_inflated() && v.tid() == Some(tid) {
                if v.recursion() == CONV_RECURSION_MAX {
                    // Recursion bits saturated: inflate, transferring the
                    // depth onto the monitor.
                    self.inflate_held(tid, v);
                    self.monitor().enter(tid); // the new level
                    return;
                }
                // Recursion bits belong to the owner; contenders only CAS,
                // so a plain fetch_add cannot corrupt the word.
                self.word.fetch_add(CONV_RECURSION_STEP, Ordering::Relaxed);
                self.stats.recursive_enters.fetch_add(1, Ordering::Relaxed);
                return;
            }
            if v.is_inflated() {
                if self.enter_fat(tid) {
                    return;
                }
                continue;
            }
            if v.is_zero() {
                if self
                    .word
                    .compare_exchange(0, ConvWord::held_by(tid).raw(), Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
                {
                    self.stats.write_fast.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                continue;
            }
            // Held by another thread: three-tier spin (Figure 3).
            let spun = self.spin.run(|| {
                let v = ConvWord(self.word.load(Ordering::Acquire));
                if v.is_zero() {
                    if self
                        .word
                        .compare_exchange(0, ConvWord::held_by(tid).raw(), Ordering::AcqRel, Ordering::Relaxed)
                        .is_ok()
                    {
                        return Probe::Done(true);
                    }
                } else if v.is_inflated() || v.has_flc() {
                    // Figure 3 line 8: leave the spin loops.
                    return Probe::Done(false);
                }
                Probe::Retry
            });
            match spun {
                Some(true) => return, // acquired in the spin loop
                Some(false) | None => {
                    // Contended beyond spinning: park on the monitor.
                    if self.enter_via_monitor(tid) {
                        return;
                    }
                }
            }
        }
    }

    /// Fat-mode entry: take the monitor, then confirm the lock is still
    /// inflated (it may have deflated while we blocked). Returns `false`
    /// if the caller must retry from the top.
    fn enter_fat(&self, tid: ThreadId) -> bool {
        let Some(m) = self.monitor_existing() else {
            // Inflated word but no entry: a deflater pruned the binding
            // and is about to publish the thin word. Retry.
            return false;
        };
        m.enter(tid);
        let v = ConvWord(self.word.load(Ordering::Acquire));
        if v.monitor_id() == Some(m.id()) {
            self.stats.monitor_enters.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            m.exit(tid);
            false
        }
    }

    /// FLC protocol: under the monitor, repeatedly set the FLC bit on the
    /// held word and park; a woken (or timed-out) contender that finds
    /// the word free inflates the lock and owns it. Returns `false` if
    /// the caller must retry from the top.
    fn enter_via_monitor(&self, tid: ThreadId) -> bool {
        let key = self.monitor_key();
        let table = MonitorTable::global();
        let m = table.monitor_for(key);
        m.enter(tid);
        loop {
            if !table.is_current(key, &m) {
                // Deflated (and pruned) while we blocked, or re-inflated
                // onto a fresh monitor: this one is an orphan.
                m.exit(tid);
                return false;
            }
            let v = ConvWord(self.word.load(Ordering::Acquire));
            if v.is_inflated() {
                if v.monitor_id() == Some(m.id()) {
                    // Someone else inflated; we already own the monitor.
                    self.stats.monitor_enters.fetch_add(1, Ordering::Relaxed);
                    return true;
                }
                // Stale inflated word this monitor never had.
                m.exit(tid);
                return false;
            }
            if !v.is_held_flat() {
                // Free (possibly with a stale FLC bit): inflate and own.
                if self
                    .word
                    .compare_exchange(v.raw(), ConvWord::inflated(m.id()).raw(), Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
                {
                    self.stats.inflations.fetch_add(1, Ordering::Relaxed);
                    self.stats.monitor_enters.fetch_add(1, Ordering::Relaxed);
                    return true;
                }
                continue;
            }
            // Held: publish contention and park.
            if v.has_flc()
                || self
                    .word
                    .compare_exchange(v.raw(), v.with_flc().raw(), Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
            {
                self.stats.flc_waits.fetch_add(1, Ordering::Relaxed);
                m.wait_timeout(tid, FLC_RECHECK);
            }
        }
    }

    /// Java-style `Object.wait()`: releases the lock (all recursion
    /// levels) and parks until notified, then reacquires. Inflates first
    /// — waiting requires the OS monitor, as in the JVM.
    ///
    /// # Panics
    ///
    /// Panics if `tid` does not hold the lock (the analogue of
    /// `IllegalMonitorStateException`).
    pub fn wait(&self, tid: ThreadId) {
        let v = ConvWord(self.word.load(Ordering::Acquire));
        if !v.is_inflated() {
            assert_eq!(v.tid(), Some(tid), "wait without holding the lock");
            self.inflate_held(tid, v);
        }
        // The entry must exist: either we just inflated, or the word
        // was already inflated and we hold it fat (blocking deflation).
        let m = self
            .monitor_existing()
            .expect("wait without holding the lock");
        assert!(m.owned_by(tid), "wait without holding the lock");
        m.wait(tid);
    }

    /// Java-style `Object.notifyAll()`: wakes every thread waiting on
    /// this lock. The caller must hold the lock.
    ///
    /// # Panics
    ///
    /// Panics if `tid` does not hold the lock.
    pub fn notify_all(&self, tid: ThreadId) {
        assert!(self.holds(tid), "notify without holding the lock");
        // Waiters exist only while inflated; notify on a thin lock is a
        // no-op and must not plant a table entry.
        if let Some(m) = self.monitor_existing() {
            m.notify_all();
        }
    }

    /// Java-style `Object.notify()`: wakes one waiting thread.
    ///
    /// # Panics
    ///
    /// Panics if `tid` does not hold the lock.
    pub fn notify_one(&self, tid: ThreadId) {
        assert!(self.holds(tid), "notify without holding the lock");
        if let Some(m) = self.monitor_existing() {
            m.notify_one();
        }
    }

    /// Inflates while `tid` holds the flat lock with saturated recursion,
    /// transferring `v.recursion()` levels onto the monitor.
    fn inflate_held(&self, tid: ThreadId, v: ConvWord) {
        let m = self.monitor();
        m.enter(tid);
        for _ in 0..v.recursion() {
            m.enter(tid);
        }
        self.word.store(ConvWord::inflated(m.id()).raw(), Ordering::Release);
        self.stats.inflations.fetch_add(1, Ordering::Relaxed);
        m.notify_all(); // FLC waiters must re-examine the word
    }

    #[cold]
    fn slow_exit(&self, tid: ThreadId, v: ConvWord) {
        if v.is_inflated() {
            self.exit_fat(tid);
            return;
        }
        debug_assert_eq!(v.tid(), Some(tid), "release by non-owner");
        if v.recursion() > 0 {
            self.word.fetch_sub(CONV_RECURSION_STEP, Ordering::Release);
            return;
        }
        // FLC set: release under the monitor and wake contenders.
        // Lookup-only: the contender that set the bit tabled the entry;
        // if it is gone nobody is parked and a plain store suffices.
        debug_assert!(v.has_flc());
        match self.monitor_existing() {
            Some(m) => {
                m.enter(tid);
                self.word.store(0, Ordering::Release);
                m.notify_all();
                m.exit(tid);
            }
            None => self.word.store(0, Ordering::Release),
        }
    }

    fn exit_fat(&self, tid: ThreadId) {
        let key = self.monitor_key();
        let table = MonitorTable::global();
        let m = table
            .existing(key)
            .expect("fat owner's monitor must be tabled");
        debug_assert!(m.owned_by(tid), "fat release by non-owner");
        if m.depth(tid) == 1 && m.idle_for_deflation() {
            // Tasuki deflation: uncontended fat locks revert to thin.
            // Prune the table entry *first* so a racing contender can
            // never claim through (or re-use) the retired binding, then
            // publish the thin word.
            let removed = table.remove_if(key, &m);
            debug_assert!(removed, "deflater's binding must still be current");
            self.word.store(0, Ordering::Release);
            self.stats.deflations.fetch_add(1, Ordering::Relaxed);
            m.notify_all();
        }
        m.exit(tid);
    }
}

impl Drop for TasukiLock {
    fn drop(&mut self) {
        MonitorTable::global().remove(self.monitor_key());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;
    use std::sync::Arc;

    #[test]
    fn uncontended_lock_unlock() {
        let l = TasukiLock::new();
        assert!(!l.is_locked());
        {
            let _g = l.lock();
            assert!(l.is_locked());
            assert!(l.held_by_current());
        }
        assert!(!l.is_locked());
        let s = l.stats().snapshot();
        assert_eq!(s.write_enters, 1);
        assert_eq!(s.write_fast, 1);
    }

    #[test]
    fn reentrant_guards_nest() {
        let l = TasukiLock::new();
        let g1 = l.lock();
        let g2 = l.lock();
        let g3 = l.lock();
        assert_eq!(l.raw_word().recursion(), 2);
        drop(g3);
        drop(g2);
        assert!(l.is_locked());
        drop(g1);
        assert!(!l.is_locked());
        assert_eq!(l.stats().snapshot().recursive_enters, 2);
    }

    #[test]
    fn deep_recursion_inflates_and_recovers() {
        let l = TasukiLock::new();
        let tid = ThreadId::current();
        let depth = (CONV_RECURSION_MAX + 5) as usize;
        for _ in 0..=depth {
            l.enter(tid);
        }
        assert!(l.is_inflated(), "saturated recursion must inflate");
        assert!(l.holds(tid));
        for _ in 0..=depth {
            l.exit(tid);
        }
        assert!(!l.is_locked());
        assert!(!l.is_inflated(), "uncontended fat lock deflates");
        assert!(l.stats().snapshot().inflations >= 1);
        assert!(l.stats().snapshot().deflations >= 1);
    }

    #[test]
    fn mutual_exclusion_under_contention() {
        let l = Arc::new(TasukiLock::with_spin(SpinConfig {
            tier1: 4,
            tier2: 8,
            tier3: 2,
        }));
        let counter = Arc::new(AtomicU32::new(0));
        const THREADS: usize = 8;
        const ITERS: u32 = 2_000;
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let l = Arc::clone(&l);
            let c = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                for _ in 0..ITERS {
                    let _g = l.lock();
                    // Non-atomic read-modify-write protected by the lock.
                    let v = c.load(Ordering::Relaxed);
                    std::hint::black_box(v);
                    c.store(v + 1, Ordering::Relaxed);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), THREADS as u32 * ITERS);
    }

    #[test]
    fn contention_inflates_then_deflates() {
        let l = Arc::new(TasukiLock::with_spin(SpinConfig::immediate()));
        let l2 = Arc::clone(&l);
        let g = l.lock();
        let h = std::thread::spawn(move || {
            let _g = l2.lock(); // must park, setting FLC / inflating
        });
        // Give the contender time to reach the monitor.
        std::thread::sleep(Duration::from_millis(30));
        drop(g);
        h.join().unwrap();
        let s = l.stats().snapshot();
        assert!(
            s.flc_waits >= 1 || s.inflations >= 1,
            "contender should have used the monitor path: {s}"
        );
        // After all contention ends the next cycle leaves the lock thin.
        drop(l.lock());
        assert!(!l.is_inflated());
    }

    #[test]
    fn holds_is_per_thread() {
        let l = Arc::new(TasukiLock::new());
        let g = l.lock();
        let l2 = Arc::clone(&l);
        std::thread::spawn(move || {
            assert!(l2.is_locked());
            assert!(!l2.held_by_current());
        })
        .join()
        .unwrap();
        drop(g);
    }
}
