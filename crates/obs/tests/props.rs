//! Property tests for the observability layer: the log2 histogram
//! merge must form a commutative monoid (results must not depend on
//! which thread's snapshot is folded in first), and the JSONL export
//! of a freshly created recorder must already satisfy the schema that
//! `obs_check` enforces on real runs.

use solero_obs::hist::{HistSnapshot, LatencyHistogram, BUCKETS};
use solero_obs::recorder::{Recorder, TraceRecorder};
use solero_obs::schema;
use solero_testkit::{forall, Gen};

/// A random snapshot; bucket counts stay far from `u64::MAX` so sums
/// can't overflow even across repeated merges.
fn gen_snapshot(g: &mut Gen) -> HistSnapshot {
    let mut buckets = [0u64; BUCKETS];
    for b in buckets.iter_mut() {
        *b = g.rng().gen_range(0u64..1 << 40);
    }
    HistSnapshot { buckets }
}

#[test]
fn hist_merge_is_commutative() {
    forall(256, 0x0B5_01, |g| {
        let (a, b) = (gen_snapshot(g), gen_snapshot(g));
        assert_eq!(a.merge(&b), b.merge(&a));
    });
}

#[test]
fn hist_merge_is_associative() {
    forall(256, 0x0B5_02, |g| {
        let (a, b, c) = (gen_snapshot(g), gen_snapshot(g), gen_snapshot(g));
        assert_eq!(a.merge(&b).merge(&c), a.merge(&b.merge(&c)));
    });
}

#[test]
fn hist_merge_identity_and_count() {
    forall(256, 0x0B5_03, |g| {
        let a = gen_snapshot(g);
        let empty = HistSnapshot::default();
        assert_eq!(a.merge(&empty), a, "empty snapshot is the identity");
        assert_eq!(empty.merge(&a), a);
        let b = gen_snapshot(g);
        assert_eq!(
            a.merge(&b).count(),
            a.count() + b.count(),
            "merge preserves total sample count"
        );
    });
}

/// Recording samples then snapshotting agrees with merging per-sample
/// snapshots: the concurrent recording side and the plain merge side
/// bucket identically.
#[test]
fn recording_agrees_with_merging() {
    forall(128, 0x0B5_04, |g| {
        let samples: Vec<u64> = {
            let n = g.gen_range(0usize..64);
            (0..n).map(|_| g.rng().gen_range(0u64..1 << 48)).collect()
        };
        let hist = LatencyHistogram::new();
        let mut folded = HistSnapshot::default();
        for &s in &samples {
            hist.record_ns(s);
            let one = LatencyHistogram::new();
            one.record_ns(s);
            folded = folded.merge(&one.snapshot());
        }
        assert_eq!(hist.snapshot(), folded);
        assert_eq!(folded.count(), samples.len() as u64);
    });
}

/// An empty `TraceRecorder` exports a meta line plus one
/// `abort_summary` line per abort reason — and every line passes the
/// same schema validation `obs_check` applies to real runs.
#[test]
fn empty_recorder_jsonl_roundtrips_through_schema() {
    let r = TraceRecorder::new();
    let mut out = Vec::new();
    r.export_jsonl(&mut out).expect("writing to a Vec cannot fail");
    let text = String::from_utf8(out).expect("export is UTF-8");

    let lines: Vec<&str> = text.lines().collect();
    assert!(!lines.is_empty(), "empty recorder still exports metadata");
    for line in &lines {
        schema::validate_line(line).unwrap_or_else(|e| panic!("{e}: {line}"));
    }

    assert_eq!(
        lines.iter().filter(|l| l.contains("\"type\":\"meta\"")).count(),
        1,
        "exactly one meta line"
    );
    let aborts = lines
        .iter()
        .filter(|l| l.contains("\"type\":\"abort_summary\""))
        .count();
    assert_eq!(aborts, lines.len() - 1, "the rest are abort summaries");
    assert!(
        !text.contains("\"type\":\"hist\""),
        "no sections recorded, so no histogram lines"
    );
}
