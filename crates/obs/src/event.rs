//! The lock-event model: what happened, on which lock, when.
//!
//! Events are deliberately small (four machine words) and `Copy` so a
//! ring-buffer push is a handful of stores. Reason codes mirror the
//! failure modes of the SOLERO read-elision protocol; the per-reason
//! counters in `solero-runtime`'s `StatsSnapshot` use the same taxonomy
//! (by name), so counter-based breakdowns and event traces agree.

use std::sync::OnceLock;
use std::time::Instant;

/// Why a speculative read-only attempt aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbortReason {
    /// The lock word was busy at entry — speculation never started and
    /// the reader waited (spin tiers) for the word to free up.
    LockedAtEntry,
    /// Exit (or catch-block) validation found the captured lock value
    /// changed: a writer ran during the section.
    WordChangedAtExit,
    /// An asynchronous-event check-point re-validated mid-section and
    /// found the captured value stale.
    AsyncRevalidationFail,
    /// The retry budget was exhausted; the section fell back to really
    /// acquiring the lock.
    RetryExhaustedFallback,
    /// The lock inflated (fat mode) — the reader had to go through the
    /// OS monitor instead of speculating.
    Inflation,
}

impl AbortReason {
    /// All reasons, in a stable reporting order.
    pub const ALL: [AbortReason; 5] = [
        AbortReason::LockedAtEntry,
        AbortReason::WordChangedAtExit,
        AbortReason::AsyncRevalidationFail,
        AbortReason::RetryExhaustedFallback,
        AbortReason::Inflation,
    ];

    /// The reason's position in [`AbortReason::ALL`] — the canonical
    /// dense index used by per-class counter arrays (see
    /// [`crate::recent::RecentAborts`]).
    pub fn index(self) -> usize {
        match self {
            AbortReason::LockedAtEntry => 0,
            AbortReason::WordChangedAtExit => 1,
            AbortReason::AsyncRevalidationFail => 2,
            AbortReason::RetryExhaustedFallback => 3,
            AbortReason::Inflation => 4,
        }
    }

    /// Stable machine-readable name (used in JSONL and report output,
    /// and matching the `abort_*` counter names in `StatsSnapshot`).
    pub fn name(self) -> &'static str {
        match self {
            AbortReason::LockedAtEntry => "locked_at_entry",
            AbortReason::WordChangedAtExit => "word_changed_at_exit",
            AbortReason::AsyncRevalidationFail => "async_revalidation_fail",
            AbortReason::RetryExhaustedFallback => "retry_exhausted_fallback",
            AbortReason::Inflation => "inflation",
        }
    }
}

/// What a [`LockEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A read-only section started a speculative (elided) attempt.
    ElisionAttempt,
    /// A speculative attempt aborted, with the reason.
    Abort(AbortReason),
    /// A writing section acquired the lock.
    WriteAcquire,
    /// A writing section released the lock.
    WriteRelease,
    /// A read section acquired the lock (lock-based strategies).
    ReadAcquire,
    /// A lock-based section released the lock.
    Release,
    /// A read-only section gave up on speculation and really acquired
    /// the lock (the starvation-freedom fallback).
    FallbackAcquire,
    /// A read-mostly section upgraded in place to holding the lock.
    MostlyUpgrade,
}

impl EventKind {
    /// Stable machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::ElisionAttempt => "elision_attempt",
            EventKind::Abort(_) => "abort",
            EventKind::WriteAcquire => "write_acquire",
            EventKind::WriteRelease => "write_release",
            EventKind::ReadAcquire => "read_acquire",
            EventKind::Release => "release",
            EventKind::FallbackAcquire => "fallback_acquire",
            EventKind::MostlyUpgrade => "mostly_upgrade",
        }
    }
}

/// One recorded lock event.
#[derive(Debug, Clone, Copy)]
pub struct LockEvent {
    /// Monotonic timestamp, nanoseconds since the process anchor.
    pub ts_ns: u64,
    /// Recording thread (the runtime's dense thread id).
    pub thread: u64,
    /// Lock identity (the lock's stable address-derived key).
    pub lock: u64,
    /// What happened.
    pub kind: EventKind,
}

impl LockEvent {
    /// An event stamped with the current monotonic time. The thread id
    /// is filled in by the recorder when the event is ring-buffered.
    pub fn now(lock: u64, kind: EventKind) -> Self {
        LockEvent {
            ts_ns: now_ns(),
            thread: 0,
            lock,
            kind,
        }
    }
}

/// Nanoseconds since the process-wide monotonic anchor (first use).
pub fn now_ns() -> u64 {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    ANCHOR.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reason_names_are_distinct() {
        for (i, a) in AbortReason::ALL.iter().enumerate() {
            for b in &AbortReason::ALL[i + 1..] {
                assert_ne!(a.name(), b.name());
            }
        }
    }

    #[test]
    fn timestamps_are_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }

    #[test]
    fn event_carries_its_kind() {
        let e = LockEvent::now(7, EventKind::Abort(AbortReason::Inflation));
        assert_eq!(e.lock, 7);
        assert_eq!(e.kind.name(), "abort");
    }
}
