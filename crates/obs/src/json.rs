//! Minimal JSON support for the JSONL export and its schema checker.
//!
//! Hand-rolled on purpose: the workspace has zero registry
//! dependencies, and the export needs only flat objects of numbers,
//! strings, and one numeric array. The writer half builds one JSONL
//! line; the parser half exists for the in-tree schema checker
//! (`obs_check`) and the round-trip tests.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Builds one JSON object, field by field, in insertion order.
#[derive(Debug, Default)]
pub struct JsonObject {
    out: String,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        JsonObject { out: String::new() }
    }

    fn sep(&mut self) {
        if !self.out.is_empty() {
            self.out.push(',');
        }
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, v: &str) -> Self {
        self.sep();
        let _ = write!(self.out, "{}:{}", escape(key), escape(v));
        self
    }

    /// Adds an unsigned integer field.
    pub fn num(mut self, key: &str, v: u64) -> Self {
        self.sep();
        let _ = write!(self.out, "{}:{v}", escape(key));
        self
    }

    /// Adds a float field (JSON `null` when not finite).
    pub fn float(mut self, key: &str, v: f64) -> Self {
        self.sep();
        if v.is_finite() {
            let _ = write!(self.out, "{}:{v}", escape(key));
        } else {
            let _ = write!(self.out, "{}:null", escape(key));
        }
        self
    }

    /// Adds an array-of-integers field.
    pub fn nums(mut self, key: &str, vs: &[u64]) -> Self {
        self.sep();
        let _ = write!(self.out, "{}:[", escape(key));
        for (i, v) in vs.iter().enumerate() {
            if i > 0 {
                self.out.push(',');
            }
            let _ = write!(self.out, "{v}");
        }
        self.out.push(']');
        self
    }

    /// The finished `{...}` line (no trailing newline).
    pub fn finish(self) -> String {
        format!("{{{}}}", self.out)
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A parsed JSON value (just enough for the schema checker).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as f64).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The object map, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parses one JSON document.
///
/// # Errors
///
/// A human-readable description of the first syntax error.
pub fn parse(s: &str) -> Result<Value, String> {
    let b = s.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i != b.len() {
        return Err(format!("trailing bytes at offset {}", p.i));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at offset {}, found {:?}",
                c as char,
                self.i,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'n') => self.lit("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.i
            )),
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.i))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.i += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("bad number at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        other => {
                            return Err(format!("bad escape {:?}", other.map(|b| b as char)))
                        }
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar.
                    let s = std::str::from_utf8(&self.b[self.i..])
                        .map_err(|e| format!("invalid utf-8: {e}"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Value::Arr(out));
        }
        loop {
            out.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => {
                    self.i += 1;
                }
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Arr(out));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.i)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut out = BTreeMap::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Value::Obj(out));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.expect(b':')?;
            let val = self.value()?;
            out.insert(key, val);
            self.ws();
            match self.peek() {
                Some(b',') => {
                    self.i += 1;
                }
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Obj(out));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.i)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_round_trips_through_parser() {
        let line = JsonObject::new()
            .str("type", "event")
            .num("ts_ns", 123)
            .str("kind", "abort")
            .nums("buckets", &[1, 2, 3])
            .float("ratio", 0.5)
            .finish();
        let v = parse(&line).unwrap();
        let o = v.as_obj().unwrap();
        assert_eq!(o["type"].as_str(), Some("event"));
        assert_eq!(o["ts_ns"].as_num(), Some(123.0));
        assert_eq!(
            o["buckets"],
            Value::Arr(vec![Value::Num(1.0), Value::Num(2.0), Value::Num(3.0)])
        );
        assert_eq!(o["ratio"].as_num(), Some(0.5));
    }

    #[test]
    fn escapes_special_characters() {
        let line = JsonObject::new().str("s", "a\"b\\c\nd").finish();
        let v = parse(&line).unwrap();
        assert_eq!(v.as_obj().unwrap()["s"].as_str(), Some("a\"b\\c\nd"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,2").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("nope").is_err());
    }

    #[test]
    fn parses_nested_and_literals() {
        let v = parse(r#"{"a":[true,false,null],"b":{"c":-1.5e2}}"#).unwrap();
        let o = v.as_obj().unwrap();
        assert_eq!(
            o["a"],
            Value::Arr(vec![Value::Bool(true), Value::Bool(false), Value::Null])
        );
        assert_eq!(o["b"].as_obj().unwrap()["c"].as_num(), Some(-150.0));
    }
}
