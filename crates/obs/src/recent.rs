//! Cheap per-lock recent-abort counters.
//!
//! The event ring and latency histograms only exist behind the `trace`
//! feature, which is deliberately too expensive to leave on in
//! production runs. Adaptive elision, however, needs *some* abort
//! history at every section entry — so this module provides the
//! cheapest possible substrate: one relaxed `u32` per taxonomy class,
//! always compiled in, no recorder required.
//!
//! "Recent" is defined by the caller: [`RecentAborts::decay`] halves
//! every class (geometric forgetting), so a policy that decays on each
//! re-arm sees an exponentially weighted window, while a diagnostic
//! reader that never decays sees totals since construction (or the
//! last [`RecentAborts::reset`]).

use std::sync::atomic::{AtomicU32, Ordering};

use crate::event::AbortReason;

/// Per-taxonomy-class abort counters with geometric decay.
///
/// All operations are relaxed: the counts are advisory history for
/// adaptation and reporting, not synchronization. Increments saturate
/// at `u32::MAX` instead of wrapping so a long-lived hot lock can never
/// make the history lie about its ordering.
///
/// # Examples
///
/// ```
/// use solero_obs::{AbortReason, RecentAborts};
///
/// let r = RecentAborts::new();
/// r.note(AbortReason::LockedAtEntry);
/// r.note(AbortReason::LockedAtEntry);
/// assert_eq!(r.count(AbortReason::LockedAtEntry), 2);
/// assert_eq!(r.total(), 2);
/// r.decay();
/// assert_eq!(r.count(AbortReason::LockedAtEntry), 1);
/// ```
#[derive(Debug, Default)]
pub struct RecentAborts {
    counts: [AtomicU32; 5],
}

impl RecentAborts {
    /// Fresh counters, all zero.
    pub const fn new() -> Self {
        RecentAborts {
            counts: [
                AtomicU32::new(0),
                AtomicU32::new(0),
                AtomicU32::new(0),
                AtomicU32::new(0),
                AtomicU32::new(0),
            ],
        }
    }

    /// Records one abort of class `reason` (saturating).
    pub fn note(&self, reason: AbortReason) {
        let c = &self.counts[reason.index()];
        // Saturating add: one lost increment at u32::MAX is preferable
        // to a wrap that makes a hot class look quiet.
        let _ = c.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
            n.checked_add(1)
        });
    }

    /// The current count for one class.
    pub fn count(&self, reason: AbortReason) -> u32 {
        self.counts[reason.index()].load(Ordering::Relaxed)
    }

    /// Sum over all classes.
    pub fn total(&self) -> u64 {
        self.counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed) as u64)
            .sum()
    }

    /// All five counts, in [`AbortReason::ALL`] order.
    pub fn snapshot(&self) -> [u32; 5] {
        [
            self.counts[0].load(Ordering::Relaxed),
            self.counts[1].load(Ordering::Relaxed),
            self.counts[2].load(Ordering::Relaxed),
            self.counts[3].load(Ordering::Relaxed),
            self.counts[4].load(Ordering::Relaxed),
        ]
    }

    /// Halves every class — geometric forgetting, so old bursts fade
    /// instead of poisoning the history forever.
    pub fn decay(&self) {
        for c in &self.counts {
            let _ = c.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| Some(n / 2));
        }
    }

    /// Zeroes every class.
    pub fn reset(&self) {
        for c in &self.counts {
            c.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn notes_land_in_their_class() {
        let r = RecentAborts::new();
        for reason in AbortReason::ALL {
            r.note(reason);
        }
        r.note(AbortReason::Inflation);
        assert_eq!(r.snapshot(), [1, 1, 1, 1, 2]);
        assert_eq!(r.total(), 6);
    }

    #[test]
    fn index_matches_all_order() {
        for (i, reason) in AbortReason::ALL.into_iter().enumerate() {
            assert_eq!(reason.index(), i, "{}", reason.name());
        }
    }

    #[test]
    fn decay_halves_and_converges_to_zero() {
        let r = RecentAborts::new();
        for _ in 0..9 {
            r.note(AbortReason::WordChangedAtExit);
        }
        r.decay();
        assert_eq!(r.count(AbortReason::WordChangedAtExit), 4);
        for _ in 0..8 {
            r.decay();
        }
        assert_eq!(r.total(), 0, "repeated decay must reach zero");
    }

    #[test]
    fn saturates_instead_of_wrapping() {
        let r = RecentAborts::new();
        r.counts[0].store(u32::MAX, Ordering::Relaxed);
        r.note(AbortReason::LockedAtEntry);
        assert_eq!(r.count(AbortReason::LockedAtEntry), u32::MAX);
    }

    #[test]
    fn reset_zeroes() {
        let r = RecentAborts::new();
        r.note(AbortReason::Inflation);
        r.reset();
        assert_eq!(r.total(), 0);
    }
}
