//! JSONL schema validation for the observability export.
//!
//! Shared by the recorder's own tests and the `obs_check` CI binary:
//! both sides agree on the line shapes, so a drive-by format change
//! fails the offline smoke step instead of silently breaking consumers.

use crate::event::AbortReason;
use crate::hist::BUCKETS;
use crate::json::{parse, Value};

/// The line types an export may contain, in the order they appear.
pub const LINE_TYPES: [&str; 4] = ["meta", "abort_summary", "hist", "event"];

const SECTIONS: [&str; 3] = ["read", "write", "mostly"];

/// Validates one JSONL line against the export schema.
///
/// # Errors
///
/// A human-readable description of the first violation.
pub fn validate_line(line: &str) -> Result<(), String> {
    let v = parse(line)?;
    let o = v.as_obj().ok_or("line is not a JSON object")?;
    let ty = o
        .get("type")
        .and_then(Value::as_str)
        .ok_or("missing string field \"type\"")?;
    match ty {
        "meta" => {
            for key in ["version", "threads", "events_recorded", "events_retained"] {
                require_uint(o, key)?;
            }
            Ok(())
        }
        "abort_summary" => {
            let reason = require_str(o, "reason")?;
            if !AbortReason::ALL.iter().any(|r| r.name() == reason) {
                return Err(format!("unknown abort reason {reason:?}"));
            }
            require_uint(o, "count")?;
            Ok(())
        }
        "hist" => {
            require_str(o, "strategy")?;
            let section = require_str(o, "section")?;
            if !SECTIONS.contains(&section) {
                return Err(format!("unknown section {section:?}"));
            }
            require_uint(o, "count")?;
            require_uint(o, "p50_ns")?;
            require_uint(o, "p99_ns")?;
            match o.get("mean_ns") {
                Some(Value::Num(_)) | Some(Value::Null) => {}
                _ => return Err("field \"mean_ns\" must be a number or null".into()),
            }
            let buckets = match o.get("buckets") {
                Some(Value::Arr(a)) => a,
                _ => return Err("field \"buckets\" must be an array".into()),
            };
            if buckets.len() != BUCKETS {
                return Err(format!(
                    "\"buckets\" has {} entries, expected {BUCKETS}",
                    buckets.len()
                ));
            }
            if !buckets.iter().all(|b| matches!(b, Value::Num(n) if *n >= 0.0)) {
                return Err("\"buckets\" entries must be non-negative numbers".into());
            }
            Ok(())
        }
        "event" => {
            for key in ["ts_ns", "thread", "lock"] {
                require_uint(o, key)?;
            }
            let kind = require_str(o, "kind")?;
            if !KNOWN_KINDS.contains(&kind) {
                return Err(format!("unknown event kind {kind:?}"));
            }
            if kind == "abort" {
                let reason = require_str(o, "reason")?;
                if !AbortReason::ALL.iter().any(|r| r.name() == reason) {
                    return Err(format!("unknown abort reason {reason:?}"));
                }
            } else if o.contains_key("reason") {
                return Err(format!("\"reason\" is only valid on abort events, not {kind:?}"));
            }
            Ok(())
        }
        other => Err(format!("unknown line type {other:?}")),
    }
}

/// Every [`EventKind::name`] value.
const KNOWN_KINDS: [&str; 8] = [
    "elision_attempt",
    "abort",
    "write_acquire",
    "write_release",
    "read_acquire",
    "release",
    "fallback_acquire",
    "mostly_upgrade",
];

fn require_str<'a>(
    o: &'a std::collections::BTreeMap<String, Value>,
    key: &str,
) -> Result<&'a str, String> {
    o.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("missing string field {key:?}"))
}

fn require_uint(o: &std::collections::BTreeMap<String, Value>, key: &str) -> Result<u64, String> {
    let n = o
        .get(key)
        .and_then(Value::as_num)
        .ok_or_else(|| format!("missing numeric field {key:?}"))?;
    if n < 0.0 || n.fract() != 0.0 {
        return Err(format!("field {key:?} must be a non-negative integer"));
    }
    Ok(n as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::json::JsonObject;

    #[test]
    fn accepts_each_line_type() {
        let meta = JsonObject::new()
            .str("type", "meta")
            .num("version", 1)
            .num("threads", 4)
            .num("events_recorded", 100)
            .num("events_retained", 100)
            .finish();
        validate_line(&meta).unwrap();

        let abort = JsonObject::new()
            .str("type", "abort_summary")
            .str("reason", "inflation")
            .num("count", 3)
            .finish();
        validate_line(&abort).unwrap();

        let hist = JsonObject::new()
            .str("type", "hist")
            .str("strategy", "SOLERO")
            .str("section", "read")
            .num("count", 2)
            .float("mean_ns", 192.0)
            .num("p50_ns", 256)
            .num("p99_ns", 512)
            .nums("buckets", &[0; BUCKETS])
            .finish();
        validate_line(&hist).unwrap();

        let event = JsonObject::new()
            .str("type", "event")
            .num("ts_ns", 5)
            .num("thread", 1)
            .num("lock", 9)
            .str("kind", "abort")
            .str("reason", "locked_at_entry")
            .finish();
        validate_line(&event).unwrap();
    }

    #[test]
    fn rejects_violations() {
        assert!(validate_line("not json").is_err());
        assert!(validate_line("[1,2,3]").is_err());
        assert!(validate_line(r#"{"type":"mystery"}"#).is_err());
        assert!(validate_line(r#"{"type":"meta","version":1}"#).is_err());
        assert!(
            validate_line(r#"{"type":"abort_summary","reason":"cosmic_rays","count":1}"#).is_err()
        );
        // Abort event without a reason.
        assert!(validate_line(
            r#"{"type":"event","ts_ns":1,"thread":1,"lock":1,"kind":"abort"}"#
        )
        .is_err());
        // Reason on a non-abort event.
        assert!(validate_line(
            r#"{"type":"event","ts_ns":1,"thread":1,"lock":1,"kind":"release","reason":"inflation"}"#
        )
        .is_err());
        // Wrong bucket count.
        let short = JsonObject::new()
            .str("type", "hist")
            .str("strategy", "S")
            .str("section", "read")
            .num("count", 0)
            .float("mean_ns", 0.0)
            .num("p50_ns", 0)
            .num("p99_ns", 0)
            .nums("buckets", &[0; 3])
            .finish();
        assert!(validate_line(&short).is_err());
    }

    #[test]
    fn known_kinds_match_event_kind_names() {
        use crate::event::AbortReason::*;
        let kinds = [
            EventKind::ElisionAttempt,
            EventKind::Abort(Inflation),
            EventKind::WriteAcquire,
            EventKind::WriteRelease,
            EventKind::ReadAcquire,
            EventKind::Release,
            EventKind::FallbackAcquire,
            EventKind::MostlyUpgrade,
        ];
        for k in kinds {
            assert!(KNOWN_KINDS.contains(&k.name()), "{} missing", k.name());
        }
    }
}
