//! Log2-bucketed latency histograms (HDR-style, fixed-size).
//!
//! [`LatencyHistogram`] is the concurrent recording side (relaxed
//! atomic buckets); [`HistSnapshot`] is the plain-array copy that
//! merges like `StatsSnapshot` and serializes into the JSONL export.
//! Covers 1 ns .. 2^48 ns (~78 h) — one `u64` counter per power of two.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 buckets.
pub const BUCKETS: usize = 48;

#[inline]
fn bucket_of(ns: u64) -> usize {
    (64 - ns.max(1).leading_zeros() as usize - 1).min(BUCKETS - 1)
}

/// A fixed-size, lock-free log2 histogram of nanosecond samples.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: [0u64; BUCKETS].map(AtomicU64::new),
        }
    }

    /// Records one sample in nanoseconds.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        self.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time plain copy.
    pub fn snapshot(&self) -> HistSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (out, b) in buckets.iter_mut().zip(&self.buckets) {
            *out = b.load(Ordering::Relaxed);
        }
        HistSnapshot { buckets }
    }

    /// Resets every bucket to zero.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// A plain copy of a [`LatencyHistogram`], mergeable across threads and
/// strategies like `StatsSnapshot`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Sample counts; bucket `i` holds samples in `[2^i, 2^(i+1))` ns.
    pub buckets: [u64; BUCKETS],
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot {
            buckets: [0; BUCKETS],
        }
    }
}

impl HistSnapshot {
    /// Total samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Bucket-wise sum.
    pub fn merge(&self, other: &HistSnapshot) -> HistSnapshot {
        let mut buckets = self.buckets;
        for (a, b) in buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        HistSnapshot { buckets }
    }

    /// Approximate `p`-quantile in nanoseconds (bucket upper bound);
    /// `p` in `[0, 1]`. Returns 0 for an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((total as f64) * p).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return 1u64 << (i + 1);
            }
        }
        1u64 << BUCKETS
    }

    /// Mean in nanoseconds, using each bucket's geometric midpoint.
    pub fn mean(&self) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let sum: f64 = self
            .buckets
            .iter()
            .enumerate()
            .map(|(i, &c)| c as f64 * 1.5 * (1u64 << i) as f64)
            .sum();
        sum / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_the_range() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(1023), 9);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn snapshot_merge_percentile() {
        let h = LatencyHistogram::new();
        for ns in [100u64, 200, 400, 100_000] {
            h.record_ns(ns);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 4);
        assert!(s.percentile(0.5) >= 100 && s.percentile(0.5) <= 512);
        assert!(s.percentile(1.0) >= 65_536);
        let m = s.merge(&s);
        assert_eq!(m.count(), 8);
    }

    #[test]
    fn empty_snapshot_is_zero() {
        let s = HistSnapshot::default();
        assert_eq!(s.count(), 0);
        assert_eq!(s.percentile(0.99), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn reset_clears() {
        let h = LatencyHistogram::new();
        h.record_ns(50);
        h.reset();
        assert_eq!(h.snapshot().count(), 0);
    }

    #[test]
    fn percentiles_monotone() {
        let h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record_ns(i * 13);
        }
        let s = h.snapshot();
        assert!(s.percentile(0.5) <= s.percentile(0.9));
        assert!(s.percentile(0.9) <= s.percentile(0.99));
        assert!(s.mean() > 0.0);
    }
}
