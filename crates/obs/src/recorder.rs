//! The [`Recorder`] strategy and the global one-branch dispatch.
//!
//! Instrumented crates call [`emit`] / [`section_start`] /
//! [`section_end`]. With the `trace` feature **disabled** those hooks
//! compile to nothing — the lock hot paths carry zero extra
//! instructions, which is what keeps the Empty-workload overhead
//! budget. With `trace` **enabled** each hook costs one relaxed load
//! and a branch until [`install`] puts a recorder in place; after that
//! the installed [`Recorder`] decides what a record costs.
//!
//! [`TraceRecorder`] is the full-fidelity implementation: per-thread
//! cache-padded bounded event rings, per-reason abort counters, and
//! per-strategy log2 latency histograms, exportable as JSONL.

use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::event::{AbortReason, EventKind, LockEvent};
use crate::hist::{HistSnapshot, LatencyHistogram};
use crate::json::JsonObject;
use crate::ring::{CachePadded, EventRing, DEFAULT_RING_CAPACITY};

/// Which flavor of critical section a latency sample belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SectionKind {
    /// A read-only section.
    Read,
    /// A writing section.
    Write,
    /// A read-mostly (§5) section.
    Mostly,
}

impl SectionKind {
    /// All kinds, in reporting order.
    pub const ALL: [SectionKind; 3] = [SectionKind::Read, SectionKind::Write, SectionKind::Mostly];

    /// Stable machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            SectionKind::Read => "read",
            SectionKind::Write => "write",
            SectionKind::Mostly => "mostly",
        }
    }

    fn index(self) -> usize {
        match self {
            SectionKind::Read => 0,
            SectionKind::Write => 1,
            SectionKind::Mostly => 2,
        }
    }
}

/// Merged per-strategy, per-section latency statistics.
#[derive(Debug, Clone)]
pub struct SectionStats {
    /// Strategy display name ("Lock", "SOLERO", ...).
    pub strategy: String,
    /// Section flavor.
    pub kind: SectionKind,
    /// The merged histogram.
    pub hist: HistSnapshot,
}

/// A point-in-time copy of everything a recorder accumulated.
#[derive(Debug, Clone, Default)]
pub struct ObsSnapshot {
    /// Threads that recorded at least one event or sample.
    pub threads: usize,
    /// Events recorded, including ones later overwritten in the rings.
    pub events_recorded: u64,
    /// Events still retained in the rings.
    pub events_retained: u64,
    /// Exact per-reason abort counts (order of [`AbortReason::ALL`]).
    pub aborts: [u64; 5],
    /// Merged latency histograms, one entry per (strategy, kind) seen.
    pub sections: Vec<SectionStats>,
}

impl ObsSnapshot {
    /// Sum of the per-reason abort counts.
    pub fn abort_total(&self) -> u64 {
        self.aborts.iter().sum()
    }
}

/// A lock-event recording strategy.
///
/// Every method has a no-op default, so a recorder interested in only
/// one signal (say, abort events) implements exactly that.
pub trait Recorder: Send + Sync {
    /// Records one lock event.
    fn record_event(&self, ev: LockEvent) {
        let _ = ev;
    }

    /// Records one completed critical section's latency.
    fn record_section(&self, strategy: &str, kind: SectionKind, ns: u64) {
        let _ = (strategy, kind, ns);
    }

    /// Writes everything recorded so far as JSON Lines.
    ///
    /// # Errors
    ///
    /// I/O errors from the sink.
    fn export_jsonl(&self, w: &mut dyn Write) -> io::Result<()> {
        let _ = w;
        Ok(())
    }

    /// A point-in-time copy of the accumulated data.
    fn snapshot(&self) -> ObsSnapshot {
        ObsSnapshot::default()
    }
}

/// A recorder that drops everything (the explicit form of "disabled").
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {}

static ENABLED: AtomicBool = AtomicBool::new(false);
static RECORDER: OnceLock<Box<dyn Recorder>> = OnceLock::new();

/// Installs the process-wide recorder. Returns `false` (and drops `r`)
/// if one is already installed — the recorder is install-once, like a
/// logger.
pub fn install(r: Box<dyn Recorder>) -> bool {
    let installed = RECORDER.set(r).is_ok();
    if installed {
        ENABLED.store(true, Ordering::Release);
    }
    installed
}

/// The installed recorder, if any. The `None` case is the advertised
/// one-branch cost: a single relaxed load.
#[inline]
pub fn recorder() -> Option<&'static dyn Recorder> {
    if !ENABLED.load(Ordering::Relaxed) {
        return None;
    }
    RECORDER.get().map(|b| &**b)
}

/// Records an event if tracing is compiled in **and** a recorder is
/// installed. The closure runs only in that case, so building the
/// event costs nothing when disabled.
#[cfg(feature = "trace")]
#[inline]
pub fn emit(make: impl FnOnce() -> LockEvent) {
    if let Some(r) = recorder() {
        r.record_event(make());
    }
}

/// Tracing is compiled out: the hook vanishes.
#[cfg(not(feature = "trace"))]
#[inline(always)]
pub fn emit(make: impl FnOnce() -> LockEvent) {
    let _ = &make;
}

/// An in-flight section-latency measurement; see [`section_start`].
#[derive(Debug)]
#[must_use = "pass the timer to section_end"]
pub struct SectionTimer {
    #[cfg(feature = "trace")]
    start: Option<std::time::Instant>,
}

/// Starts timing a critical section (a no-op unless `trace` is
/// compiled in and a recorder is installed).
#[cfg(feature = "trace")]
#[inline]
pub fn section_start() -> SectionTimer {
    SectionTimer {
        start: if ENABLED.load(Ordering::Relaxed) {
            Some(std::time::Instant::now())
        } else {
            None
        },
    }
}

/// Tracing is compiled out: the timer is a zero-sized no-op.
#[cfg(not(feature = "trace"))]
#[inline(always)]
pub fn section_start() -> SectionTimer {
    SectionTimer {}
}

/// Finishes a section timing and hands the sample to the recorder.
#[cfg(feature = "trace")]
#[inline]
pub fn section_end(t: SectionTimer, strategy: &'static str, kind: SectionKind) {
    if let Some(start) = t.start {
        if let Some(r) = recorder() {
            r.record_section(strategy, kind, start.elapsed().as_nanos() as u64);
        }
    }
}

/// Tracing is compiled out: the hook vanishes.
#[cfg(not(feature = "trace"))]
#[inline(always)]
pub fn section_end(t: SectionTimer, strategy: &'static str, kind: SectionKind) {
    let _ = (t, strategy, kind);
}

/// Dense observability-local thread ids (obs cannot depend on the
/// runtime's thread registry — it sits below it in the crate graph).
fn obs_thread_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static ID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    ID.with(|id| *id)
}

/// One recording thread's private state: its event ring plus its
/// per-strategy latency histograms. Everything is written only by the
/// owning thread (uncontended mutexes) and read by the exporter.
#[derive(Debug)]
struct ThreadSlot {
    thread: u64,
    ring: CachePadded<EventRing>,
    /// `(strategy name, [read, write, mostly])`, append-only.
    hists: Mutex<Vec<(String, [LatencyHistogram; 3])>>,
}

/// The full-fidelity recorder behind the `obs-trace` builds.
#[derive(Debug)]
pub struct TraceRecorder {
    ring_capacity: usize,
    slots: Mutex<Vec<Arc<ThreadSlot>>>,
    /// Exact per-reason abort counts (ring overwrites lose events, not
    /// these).
    aborts: [AtomicU64; 5],
}

thread_local! {
    static SLOT: std::cell::RefCell<Option<Arc<ThreadSlot>>> =
        const { std::cell::RefCell::new(None) };
}

impl Default for TraceRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceRecorder {
    /// A recorder with the default per-thread ring capacity.
    pub fn new() -> Self {
        Self::with_ring_capacity(DEFAULT_RING_CAPACITY)
    }

    /// A recorder whose per-thread rings retain `capacity` events.
    pub fn with_ring_capacity(capacity: usize) -> Self {
        TraceRecorder {
            ring_capacity: capacity,
            slots: Mutex::new(Vec::new()),
            aborts: Default::default(),
        }
    }

    /// The calling thread's slot, registering it on first use. Only one
    /// recorder is ever installed per process (see [`install`]), so the
    /// thread-local cache needs no recorder identity check.
    fn slot(&self) -> Arc<ThreadSlot> {
        SLOT.with(|s| {
            let mut s = s.borrow_mut();
            if let Some(slot) = s.as_ref() {
                return Arc::clone(slot);
            }
            let slot = Arc::new(ThreadSlot {
                thread: obs_thread_id(),
                ring: CachePadded(EventRing::new(self.ring_capacity)),
                hists: Mutex::new(Vec::new()),
            });
            self.slots.lock().unwrap().push(Arc::clone(&slot));
            *s = Some(Arc::clone(&slot));
            slot
        })
    }
}

impl Recorder for TraceRecorder {
    fn record_event(&self, mut ev: LockEvent) {
        let slot = self.slot();
        ev.thread = slot.thread;
        if let EventKind::Abort(reason) = ev.kind {
            let idx = AbortReason::ALL.iter().position(|r| *r == reason).unwrap();
            self.aborts[idx].fetch_add(1, Ordering::Relaxed);
        }
        slot.ring.0.push(ev);
    }

    fn record_section(&self, strategy: &str, kind: SectionKind, ns: u64) {
        let slot = self.slot();
        let mut hists = slot.hists.lock().unwrap();
        let entry = match hists.iter().position(|(name, _)| name == strategy) {
            Some(i) => &hists[i],
            None => {
                hists.push((strategy.to_string(), Default::default()));
                hists.last().unwrap()
            }
        };
        entry.1[kind.index()].record_ns(ns);
    }

    fn snapshot(&self) -> ObsSnapshot {
        let slots: Vec<Arc<ThreadSlot>> = self.slots.lock().unwrap().clone();
        let mut snap = ObsSnapshot {
            threads: slots.len(),
            ..ObsSnapshot::default()
        };
        for (i, a) in self.aborts.iter().enumerate() {
            snap.aborts[i] = a.load(Ordering::Relaxed);
        }
        let mut merged: Vec<(String, [HistSnapshot; 3])> = Vec::new();
        for slot in &slots {
            snap.events_recorded += slot.ring.0.recorded() as u64;
            snap.events_retained += slot.ring.0.drain_ordered().len() as u64;
            for (name, hists) in slot.hists.lock().unwrap().iter() {
                let entry = match merged.iter_mut().find(|(n, _)| n == name) {
                    Some(e) => e,
                    None => {
                        merged.push((name.clone(), [HistSnapshot::default(); 3]));
                        merged.last_mut().unwrap()
                    }
                };
                for (acc, h) in entry.1.iter_mut().zip(hists) {
                    *acc = acc.merge(&h.snapshot());
                }
            }
        }
        for (name, kinds) in merged {
            for k in SectionKind::ALL {
                let hist = kinds[k.index()];
                if hist.count() > 0 {
                    snap.sections.push(SectionStats {
                        strategy: name.clone(),
                        kind: k,
                        hist,
                    });
                }
            }
        }
        snap
    }

    fn export_jsonl(&self, w: &mut dyn Write) -> io::Result<()> {
        let snap = self.snapshot();
        writeln!(
            w,
            "{}",
            JsonObject::new()
                .str("type", "meta")
                .num("version", 1)
                .num("threads", snap.threads as u64)
                .num("events_recorded", snap.events_recorded)
                .num("events_retained", snap.events_retained)
                .finish()
        )?;
        for (reason, count) in AbortReason::ALL.iter().zip(snap.aborts) {
            writeln!(
                w,
                "{}",
                JsonObject::new()
                    .str("type", "abort_summary")
                    .str("reason", reason.name())
                    .num("count", count)
                    .finish()
            )?;
        }
        for s in &snap.sections {
            writeln!(
                w,
                "{}",
                JsonObject::new()
                    .str("type", "hist")
                    .str("strategy", &s.strategy)
                    .str("section", s.kind.name())
                    .num("count", s.hist.count())
                    .float("mean_ns", s.hist.mean())
                    .num("p50_ns", s.hist.percentile(0.50))
                    .num("p99_ns", s.hist.percentile(0.99))
                    .nums("buckets", &s.hist.buckets)
                    .finish()
            )?;
        }
        let slots: Vec<Arc<ThreadSlot>> = self.slots.lock().unwrap().clone();
        for slot in &slots {
            for ev in slot.ring.0.drain_ordered() {
                let mut o = JsonObject::new()
                    .str("type", "event")
                    .num("ts_ns", ev.ts_ns)
                    .num("thread", ev.thread)
                    .num("lock", ev.lock)
                    .str("kind", ev.kind.name());
                if let EventKind::Abort(reason) = ev.kind {
                    o = o.str("reason", reason.name());
                }
                writeln!(w, "{}", o.finish())?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind) -> LockEvent {
        LockEvent::now(42, kind)
    }

    #[test]
    fn trace_recorder_accumulates_events_and_sections() {
        let r = TraceRecorder::with_ring_capacity(8);
        r.record_event(ev(EventKind::ElisionAttempt));
        r.record_event(ev(EventKind::Abort(AbortReason::WordChangedAtExit)));
        r.record_event(ev(EventKind::Abort(AbortReason::WordChangedAtExit)));
        r.record_section("SOLERO", SectionKind::Read, 150);
        r.record_section("SOLERO", SectionKind::Read, 300);
        r.record_section("SOLERO", SectionKind::Write, 1000);
        let s = r.snapshot();
        assert_eq!(s.events_recorded, 3);
        assert_eq!(s.events_retained, 3);
        assert_eq!(s.abort_total(), 2);
        assert_eq!(s.aborts[1], 2, "word_changed_at_exit is reason index 1");
        let read = s
            .sections
            .iter()
            .find(|x| x.kind == SectionKind::Read)
            .unwrap();
        assert_eq!(read.strategy, "SOLERO");
        assert_eq!(read.hist.count(), 2);
    }

    #[test]
    fn multithreaded_recording_lands_in_separate_rings() {
        let r = Arc::new(TraceRecorder::with_ring_capacity(64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let r = Arc::clone(&r);
                s.spawn(move || {
                    for _ in 0..10 {
                        r.record_event(ev(EventKind::WriteAcquire));
                        r.record_section("Lock", SectionKind::Write, 500);
                    }
                });
            }
        });
        let s = r.snapshot();
        assert_eq!(s.threads, 4);
        assert_eq!(s.events_recorded, 40);
        let w = s
            .sections
            .iter()
            .find(|x| x.kind == SectionKind::Write)
            .unwrap();
        assert_eq!(w.hist.count(), 40);
    }

    #[test]
    fn export_emits_valid_schema_lines() {
        let r = TraceRecorder::with_ring_capacity(8);
        r.record_event(ev(EventKind::Abort(AbortReason::Inflation)));
        r.record_event(ev(EventKind::FallbackAcquire));
        r.record_section("RWLock", SectionKind::Mostly, 90);
        let mut out = Vec::new();
        r.export_jsonl(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // meta + 5 abort_summary + 1 hist + 2 events
        assert_eq!(lines.len(), 1 + 5 + 1 + 2, "{text}");
        for line in lines {
            crate::schema::validate_line(line).unwrap_or_else(|e| panic!("{e}: {line}"));
        }
    }

    #[test]
    fn null_recorder_snapshot_is_empty() {
        let r = NullRecorder;
        r.record_event(ev(EventKind::Release));
        r.record_section("Lock", SectionKind::Read, 10);
        let s = r.snapshot();
        assert_eq!(s.events_recorded, 0);
        assert_eq!(s.abort_total(), 0);
        let mut out = Vec::new();
        r.export_jsonl(&mut out).unwrap();
        assert!(out.is_empty());
    }
}
