//! Bounded per-thread event rings.
//!
//! Each recording thread owns one [`EventRing`] wrapped in a
//! [`CachePadded`] slot, so concurrent recorders never share a cache
//! line. The ring is bounded: once full, the oldest events are
//! overwritten — tracing a long run keeps the tail, which is what a
//! failure post-mortem wants. Pushes by the owning thread and drains by
//! the exporter are serialized by a per-ring mutex; the owner's lock is
//! uncontended for the whole run, so a push is one CAS plus a few
//! stores.

use std::sync::Mutex;

use crate::event::LockEvent;

/// Default ring capacity (events per thread).
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// Pads the wrapped value to its own 64-byte cache lines (the testkit
/// `CachePadded` re-implemented here: `solero-obs` sits below the test
/// substrate in the crate graph and must stay dependency-free).
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct CachePadded<T>(pub T);

#[derive(Debug)]
struct RingInner {
    buf: Vec<LockEvent>,
    /// Next write position (monotonic; slot = head % capacity).
    head: usize,
    capacity: usize,
}

/// A bounded, overwrite-oldest buffer of [`LockEvent`]s.
#[derive(Debug)]
pub struct EventRing {
    inner: Mutex<RingInner>,
}

impl EventRing {
    /// Creates a ring holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        EventRing {
            inner: Mutex::new(RingInner {
                buf: Vec::with_capacity(capacity),
                head: 0,
                capacity,
            }),
        }
    }

    /// Appends an event, overwriting the oldest once full.
    pub fn push(&self, ev: LockEvent) {
        let mut r = self.inner.lock().unwrap();
        let slot = r.head % r.capacity;
        if r.buf.len() < r.capacity {
            r.buf.push(ev);
        } else {
            r.buf[slot] = ev;
        }
        r.head += 1;
    }

    /// Events recorded since creation (including overwritten ones).
    pub fn recorded(&self) -> usize {
        self.inner.lock().unwrap().head
    }

    /// Copies the retained events out, oldest first.
    pub fn drain_ordered(&self) -> Vec<LockEvent> {
        let r = self.inner.lock().unwrap();
        if r.buf.len() < r.capacity {
            return r.buf.clone();
        }
        let split = r.head % r.capacity;
        let mut out = Vec::with_capacity(r.capacity);
        out.extend_from_slice(&r.buf[split..]);
        out.extend_from_slice(&r.buf[..split]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(lock: u64) -> LockEvent {
        LockEvent {
            ts_ns: lock,
            thread: 0,
            lock,
            kind: EventKind::WriteAcquire,
        }
    }

    #[test]
    fn keeps_everything_until_full() {
        let r = EventRing::new(4);
        for i in 0..3 {
            r.push(ev(i));
        }
        let got: Vec<u64> = r.drain_ordered().iter().map(|e| e.lock).collect();
        assert_eq!(got, vec![0, 1, 2]);
        assert_eq!(r.recorded(), 3);
    }

    #[test]
    fn overwrites_oldest_when_full() {
        let r = EventRing::new(4);
        for i in 0..10 {
            r.push(ev(i));
        }
        let got: Vec<u64> = r.drain_ordered().iter().map(|e| e.lock).collect();
        assert_eq!(got, vec![6, 7, 8, 9], "tail survives, oldest dropped");
        assert_eq!(r.recorded(), 10);
    }

    #[test]
    fn cache_padding_is_at_least_a_line() {
        assert!(std::mem::align_of::<CachePadded<EventRing>>() >= 64);
    }
}
