//! # solero-obs — lock-event observability
//!
//! A zero-dependency observability layer for the SOLERO lock crates:
//!
//! - [`LockEvent`] / [`EventKind`] / [`AbortReason`] — the event model,
//!   including the five-way abort taxonomy behind Figure 15.
//! - [`RecentAborts`] — always-compiled per-lock recent-abort counters
//!   (one relaxed `u32` per taxonomy class, geometric decay), the
//!   substrate adaptive elision reads without the `trace` feature.
//! - [`EventRing`] — bounded, cache-padded per-thread ring buffers.
//! - [`LatencyHistogram`] / [`HistSnapshot`] — mergeable log2 latency
//!   histograms for read-/write-section latencies per strategy.
//! - [`Recorder`] — the dyn-compatible recording strategy, with
//!   [`NullRecorder`] (drop everything) and [`TraceRecorder`] (full
//!   fidelity, JSONL-exportable).
//! - [`emit`] / [`section_start`] / [`section_end`] — the hooks the
//!   lock crates call. Without the `trace` feature they compile to
//!   nothing; with it they cost one relaxed load when no recorder is
//!   installed.
//! - [`schema::validate_line`] — the JSONL schema checker behind the
//!   offline `obs_check` CI step.
//!
//! The crate sits at the bottom of the workspace graph (no deps, not
//! even on the testkit) so every lock crate can hook into it without
//! cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod event;
pub mod hist;
pub mod json;
pub mod recent;
pub mod recorder;
pub mod report;
pub mod ring;
pub mod schema;

pub use event::{now_ns, AbortReason, EventKind, LockEvent};
pub use hist::{HistSnapshot, LatencyHistogram, BUCKETS};
pub use recent::RecentAborts;
pub use recorder::{
    emit, install, recorder, section_end, section_start, NullRecorder, ObsSnapshot, Recorder,
    SectionKind, SectionStats, SectionTimer, TraceRecorder,
};
pub use ring::{EventRing, DEFAULT_RING_CAPACITY};
