//! Human-readable rendering of an [`ObsSnapshot`].
//!
//! The JSONL export is for tooling; this is the thing a person reads
//! after a run: an abort-reason breakdown (the Figure 15 companion) and
//! per-strategy latency percentiles.

use std::fmt::Write as _;

use crate::event::AbortReason;
use crate::recorder::ObsSnapshot;

/// Renders a snapshot as an indented text report.
pub fn render(snap: &ObsSnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "lock-event observability report");
    let _ = writeln!(
        out,
        "  threads: {}  events: {} recorded, {} retained",
        snap.threads, snap.events_recorded, snap.events_retained
    );
    let total = snap.abort_total();
    let _ = writeln!(out, "  read aborts by reason ({total} total):");
    for (reason, &count) in AbortReason::ALL.iter().zip(&snap.aborts) {
        let share = if total > 0 {
            100.0 * count as f64 / total as f64
        } else {
            0.0
        };
        let _ = writeln!(out, "    {:<26} {:>10}  {:5.1}%", reason.name(), count, share);
    }
    if snap.sections.is_empty() {
        let _ = writeln!(out, "  section latencies: none recorded");
    } else {
        let _ = writeln!(out, "  section latencies (ns):");
        let _ = writeln!(
            out,
            "    {:<20} {:<7} {:>10} {:>10} {:>10} {:>10}",
            "strategy", "section", "count", "mean", "p50", "p99"
        );
        for s in &snap.sections {
            let _ = writeln!(
                out,
                "    {:<20} {:<7} {:>10} {:>10.0} {:>10} {:>10}",
                s.strategy,
                s.kind.name(),
                s.hist.count(),
                s.hist.mean(),
                s.hist.percentile(0.50),
                s.hist.percentile(0.99),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::LatencyHistogram;
    use crate::recorder::{SectionKind, SectionStats};

    #[test]
    fn report_mentions_every_reason() {
        let mut snap = ObsSnapshot::default();
        snap.aborts = [5, 4, 3, 2, 1];
        let h = LatencyHistogram::new();
        h.record_ns(100);
        snap.sections.push(SectionStats {
            strategy: "SOLERO".into(),
            kind: SectionKind::Read,
            hist: h.snapshot(),
        });
        let text = render(&snap);
        for r in AbortReason::ALL {
            assert!(text.contains(r.name()), "missing {}", r.name());
        }
        assert!(text.contains("SOLERO"));
        assert!(text.contains("15 total"));
    }

    #[test]
    fn empty_snapshot_renders() {
        let text = render(&ObsSnapshot::default());
        assert!(text.contains("none recorded"));
    }
}
