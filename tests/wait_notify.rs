//! Java-monitor `wait`/`notify` semantics on both lock implementations
//! — the "full lock functionality" the paper requires of a drop-in
//! replacement — and their interplay with elision and deflation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use solero::{Fault, SoleroLock};
use solero_runtime::thread::ThreadId;
use solero_tasuki::TasukiLock;

/// Classic producer/consumer over the conventional lock.
#[test]
fn tasuki_producer_consumer() {
    let lock = Arc::new(TasukiLock::new());
    let slot = Arc::new(AtomicU64::new(0));
    let l2 = Arc::clone(&lock);
    let s2 = Arc::clone(&slot);
    let consumer = std::thread::spawn(move || {
        let tid = ThreadId::current();
        l2.enter(tid);
        while s2.load(Ordering::Acquire) == 0 {
            l2.wait(tid); // releases the lock while parked
        }
        let got = s2.load(Ordering::Acquire);
        l2.exit(tid);
        got
    });
    std::thread::sleep(Duration::from_millis(30));
    let tid = ThreadId::current();
    lock.enter(tid);
    slot.store(99, Ordering::Release);
    lock.notify_all(tid);
    lock.exit(tid);
    assert_eq!(consumer.join().unwrap(), 99);
    // Once everyone is gone the lock cycles back to thin.
    drop(lock.lock());
    assert!(!lock.is_inflated());
}

/// Producer/consumer over SOLERO: waiting inflates, the displaced
/// counter keeps speculative readers correct, and elision resumes after
/// deflation.
#[test]
fn solero_producer_consumer_then_elision_resumes() {
    let lock = Arc::new(SoleroLock::new());
    let slot = Arc::new(AtomicU64::new(0));
    let captured = lock.raw_word();

    let l2 = Arc::clone(&lock);
    let s2 = Arc::clone(&slot);
    let consumer = std::thread::spawn(move || {
        let tid = ThreadId::current();
        let t = l2.enter_write(tid);
        while s2.load(Ordering::Acquire) == 0 {
            l2.wait(tid);
        }
        let got = s2.load(Ordering::Acquire);
        l2.exit_write(tid, t);
        got
    });
    std::thread::sleep(Duration::from_millis(30));
    assert!(lock.is_inflated(), "waiting inflates the lock");

    // Readers while the consumer is parked: the lock is fat, so they go
    // through the monitor — and still see coherent data.
    let v = lock
        .read_only(|_| Ok::<_, Fault>(slot.load(Ordering::Acquire)))
        .unwrap();
    assert_eq!(v, 0);

    let tid = ThreadId::current();
    let t = lock.enter_write(tid);
    slot.store(7, Ordering::Release);
    lock.notify_all(tid);
    lock.exit_write(tid, t);
    assert_eq!(consumer.join().unwrap(), 7);

    // Quiesce: the next uncontended cycle deflates with a fresh counter.
    lock.write(|| {});
    let after = lock.raw_word();
    assert!(!after.is_inflated(), "deflated after the wait/notify cycle");
    assert_ne!(after, captured, "counter advanced across the fat episode");

    // And elision works again.
    let before = lock.stats().snapshot().elision_success;
    lock.read_only(|_| Ok::<_, Fault>(())).unwrap();
    assert_eq!(lock.stats().snapshot().elision_success, before + 1);
}

/// Deflation must not strand waiters: while a thread is parked in the
/// wait set the lock stays fat, even across many uncontended cycles.
#[test]
fn deflation_is_deferred_while_waiters_exist() {
    let lock = Arc::new(SoleroLock::new());
    let slot = Arc::new(AtomicU64::new(0));
    let l2 = Arc::clone(&lock);
    let s2 = Arc::clone(&slot);
    let waiter = std::thread::spawn(move || {
        let tid = ThreadId::current();
        let t = l2.enter_write(tid);
        while s2.load(Ordering::Acquire) == 0 {
            l2.wait(tid);
        }
        l2.exit_write(tid, t);
    });
    std::thread::sleep(Duration::from_millis(30));
    // Uncontended write cycles while the waiter is parked: the lock must
    // remain fat (otherwise the waiter's reacquired monitor would
    // disagree with the word).
    for _ in 0..5 {
        lock.write(|| {});
        assert!(lock.is_inflated(), "no deflation with a parked waiter");
    }
    let tid = ThreadId::current();
    let t = lock.enter_write(tid);
    slot.store(1, Ordering::Release);
    lock.notify_all(tid);
    lock.exit_write(tid, t);
    waiter.join().unwrap();
    lock.write(|| {});
    assert!(!lock.is_inflated(), "deflates once the wait set is empty");
}

/// Multiple waiters, one notify_all: all are released and mutual
/// exclusion holds during the stampede.
#[test]
fn notify_all_wakes_every_waiter() {
    let lock = Arc::new(SoleroLock::new());
    let gate = Arc::new(AtomicU64::new(0));
    let woken = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for _ in 0..4 {
        let (l, g, w) = (Arc::clone(&lock), Arc::clone(&gate), Arc::clone(&woken));
        handles.push(std::thread::spawn(move || {
            let tid = ThreadId::current();
            let t = l.enter_write(tid);
            while g.load(Ordering::Acquire) == 0 {
                l.wait(tid);
            }
            w.fetch_add(1, Ordering::Relaxed);
            l.exit_write(tid, t);
        }));
    }
    std::thread::sleep(Duration::from_millis(50));
    let tid = ThreadId::current();
    let t = lock.enter_write(tid);
    gate.store(1, Ordering::Release);
    lock.notify_all(tid);
    lock.exit_write(tid, t);
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(woken.load(Ordering::Relaxed), 4);
}

/// `wait` without holding the lock is an IllegalMonitorState analogue.
#[test]
#[should_panic(expected = "wait without holding the lock")]
fn wait_without_lock_panics() {
    let lock = SoleroLock::new();
    lock.wait(ThreadId::current());
}
