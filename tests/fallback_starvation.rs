//! Starvation-freedom of the read-only fallback (satellite of the
//! hermetic-testkit issue).
//!
//! The paper's protocol (§3.2, Figure 8) bounds speculation: after
//! `fallback_threshold` failed optimistic attempts a read-only section
//! stops speculating and **acquires the lock for real**, so a reader
//! can never be starved by a hostile writer that invalidates every
//! speculative run. Two angles:
//!
//! * a deterministic run where a writer invalidates every speculative
//!   attempt, pinning the exact retry → fallback → acquire sequence
//!   through the statistics counters;
//! * a stress run where readers overlap a hostile writer's entire
//!   lifetime; every reader iteration must complete (the testkit
//!   watchdog turns a livelock into an abort, not a hang) and the
//!   fallback counter must show the bounded retry doing its job.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use solero::{Checkpoint, Fault, SoleroConfig, SoleroLock};
use solero_testkit::{seed_override, stress, StressConfig};

const READERS: usize = 3;
const READS: usize = 4_000;
const WRITES: usize = 3_000;

/// Deterministic retry-bound: a writer invalidates **every** speculative
/// attempt, so a `fallback_threshold = N` section must fail exactly `N`
/// times, then run once more under the genuinely acquired lock — the
/// paper's starvation-freedom argument, pinned through the counters.
#[test]
fn retry_bound_exceeded_falls_back_to_real_acquisition() {
    for threshold in [1u32, 3] {
        let cfg = SoleroConfig {
            fallback_threshold: threshold,
            ..SoleroConfig::default()
        };
        let lock = SoleroLock::with_config(cfg);
        let mut attempts = 0u32;
        let r = lock
            .read_only(|s| {
                attempts += 1;
                if s.is_speculative() {
                    // Hostile writer: invalidate this attempt mid-section.
                    std::thread::scope(|sc| {
                        sc.spawn(|| lock.write(|| {}));
                    });
                    Ok::<_, Fault>(0)
                } else {
                    // The bounded retry ran out: this execution holds
                    // the lock for real and cannot be invalidated.
                    Ok(attempts)
                }
            })
            .unwrap();
        assert_eq!(
            r,
            threshold + 1,
            "threshold {threshold}: one execution per allowed failure, then fallback"
        );
        let snap = lock.stats().snapshot();
        assert_eq!(snap.read_enters, 1, "{snap}");
        assert_eq!(snap.elision_failure, u64::from(threshold), "{snap}");
        assert_eq!(snap.fallback_acquires, 1, "{snap}");
        assert_eq!(snap.elision_success, 0, "{snap}");
        assert!(!lock.is_locked(), "fallback must release the real lock");
    }
}

/// Stress: a writer mutating as fast as it can for its whole lifetime
/// cannot starve readers, and the progress is attributable to fallback.
#[test]
fn hostile_writer_cannot_starve_readers() {
    let lock = SoleroLock::with_config(SoleroConfig::default());
    let shared = [AtomicU64::new(0), AtomicU64::new(0)];
    let writer_done = AtomicBool::new(false);
    let completed = AtomicU64::new(0);
    let total_reads = AtomicU64::new(0);
    let forced_writes = AtomicU64::new(0);

    stress(
        "fallback-starvation",
        &StressConfig::new(READERS + 1, 1, seed_override(0xFA11_BACC)),
        |w| {
            if w.id == 0 {
                // Hostile writer: a fixed budget of write sections, each
                // long enough that overlapping readers reliably observe
                // the lock as held.
                for _ in 0..WRITES {
                    lock.write(|| {
                        for _ in 0..64 {
                            shared[0].fetch_add(1, Ordering::Relaxed);
                            shared[1].fetch_add(1, Ordering::Relaxed);
                        }
                    });
                }
                writer_done.store(true, Ordering::Release);
            } else {
                // Readers overlap the writer's entire lifetime: at least
                // READS sections, and keep going until the writer is
                // done so contention is guaranteed, not scheduled luck.
                let mut n = 0u64;
                loop {
                    let done_before = writer_done.load(Ordering::Acquire);
                    let v = lock
                        .read_only(|_| {
                            // Both cells advance together inside the
                            // write lock; a validated or genuinely
                            // acquired read sees a consistent pair.
                            let a = shared[0].load(Ordering::Relaxed);
                            let b = shared[1].load(Ordering::Relaxed);
                            Ok::<_, Fault>((a, b))
                        })
                        .expect("read-only section must not leak faults");
                    if done_before {
                        assert_eq!(v.0, v.1, "quiescent read must be consistent");
                    }
                    n += 1;
                    if n as usize >= READS && writer_done.load(Ordering::Acquire) {
                        break;
                    }
                }
                // Deterministic coda: whether or not the organic phase
                // produced a validation failure on this schedule, force
                // exactly one — invalidate our own speculative section
                // with a scoped write, which with the paper's
                // `fallback_threshold = 1` must end in a real
                // acquisition.
                let mut forced = false;
                while !forced {
                    lock.read_only(|s| {
                        if s.is_speculative() {
                            forced = true;
                            std::thread::scope(|sc| {
                                sc.spawn(|| {
                                    lock.write(|| {
                                        forced_writes.fetch_add(1, Ordering::Relaxed);
                                    });
                                });
                            });
                        }
                        Ok::<_, Fault>(())
                    })
                    .unwrap();
                    n += 1;
                }
                completed.fetch_add(1, Ordering::Relaxed);
                total_reads.fetch_add(n, Ordering::Relaxed);
            }
        },
    );

    assert_eq!(
        completed.load(Ordering::Relaxed),
        READERS as u64,
        "every reader finished despite the hostile writer"
    );
    let snap = lock.stats().snapshot();
    assert_eq!(snap.read_enters, total_reads.load(Ordering::Relaxed));
    assert!(
        snap.fallback_acquires >= READERS as u64,
        "bounded retry must have fallen back to real acquisition: {snap}"
    );
    assert!(
        snap.elision_failure >= READERS as u64,
        "every fallback is preceded by at least one failed attempt: {snap}"
    );
    assert_eq!(
        snap.write_enters,
        WRITES as u64 + forced_writes.load(Ordering::Relaxed),
        "{snap}"
    );
    assert!(!lock.is_locked(), "fallbacks must all have released");
}

/// The converse guard: with an idle writer the same readers never fall
/// back, tying the fallback counter to contention rather than noise.
#[test]
fn idle_lock_readers_never_fall_back() {
    let lock = SoleroLock::with_config(SoleroConfig::default());
    let data = AtomicU64::new(7);
    stress(
        "fallback-quiescent",
        &StressConfig::new(READERS, 1, seed_override(0xFA11_BACD)),
        |_w| {
            for _ in 0..READS {
                let v = lock
                    .read_only(|_| Ok::<_, Fault>(data.load(Ordering::Relaxed)))
                    .unwrap();
                assert_eq!(v, 7);
            }
        },
    );
    let snap = lock.stats().snapshot();
    assert_eq!(snap.fallback_acquires, 0, "{snap}");
    assert_eq!(snap.elision_failure, 0, "{snap}");
    assert_eq!(snap.elision_success, (READERS * READS) as u64, "{snap}");
}
