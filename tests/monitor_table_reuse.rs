//! Monitor-table lifecycle regressions: the leak and the aliasing bug.
//!
//! Two historical defects this file pins down:
//!
//! * **Leak** — deflation (and lock teardown) must *remove* the
//!   key→monitor binding from the global [`MonitorTable`], not just
//!   republish the thin word. Before the fix, every inflate/deflate
//!   cycle of a fresh lock left a zombie `Arc<OsMonitor>` behind, so a
//!   program churning short-lived locks grew the table without bound.
//! * **Aliasing** — keying the table by raw word address let a new lock
//!   allocated at a reused address *adopt the previous lock's monitor*
//!   (wrong wait-set, wrong displaced counter). Keys now carry a
//!   generation — a per-lock nonce for standalone locks, the allocation
//!   generation for heap slots — so reuse always starts fresh.
//!
//! Table-size assertions use slack bounds, not exact equality: the
//! tests in this binary may run in parallel and each plants transient
//! entries of its own.

use solero::{CompactSpace, Fault, SoleroLock};
use solero_heap::{ClassId, Heap};
use solero_runtime::osmonitor::{MonitorKey, MonitorTable};

/// Forces inflation via recursion saturation: nested reentrant write
/// sections past `SOLERO_RECURSION_MAX` inflate deterministically with
/// no second thread, and the final exit deflates.
fn nest(lock: &SoleroLock, depth: usize, hit_fat: &mut bool) {
    if depth == 0 {
        *hit_fat |= lock.is_inflated();
        return;
    }
    lock.write(|| nest(lock, depth - 1, hit_fat));
}

/// Comfortably past `SOLERO_RECURSION_MAX` (31).
const NEST_DEPTH: usize = 40;

#[test]
fn inflate_deflate_cycles_leave_no_entry() {
    let lock = SoleroLock::new();
    for round in 0..64 {
        let mut hit_fat = false;
        nest(&lock, NEST_DEPTH, &mut hit_fat);
        assert!(hit_fat, "round {round}: recursion saturation must inflate");
        assert!(!lock.is_inflated(), "round {round}: final exit deflates");
        assert!(
            !lock.monitor_resident(),
            "round {round}: deflation must prune the table entry"
        );
    }
    let s = lock.stats().snapshot();
    assert!(s.inflations >= 64, "{s}");
    assert!(s.deflations >= 64, "{s}");
    assert!(s.deflations <= s.inflations, "{s}");
}

#[test]
fn address_reuse_churn_keeps_the_table_flat() {
    // The 512-iteration leak regression: every iteration creates a
    // lock, inflates it, deflates it, and drops it. The allocator is
    // free (and likely) to hand successive boxes the same address; with
    // the leak, the table grew by one zombie per iteration — here it
    // must stay flat.
    let table = MonitorTable::global();
    let before = table.len();
    let mut keys = Vec::new();
    for round in 0..512 {
        let lock = Box::new(SoleroLock::new());
        let key = lock.monitor_key();
        let mut hit_fat = false;
        nest(&lock, NEST_DEPTH, &mut hit_fat);
        assert!(hit_fat, "round {round}: recursion saturation must inflate");
        assert!(
            !lock.monitor_resident(),
            "round {round}: deflated lock must not be tabled"
        );
        drop(lock);
        assert!(
            table.existing(key).is_none(),
            "round {round}: dropped lock must not be tabled"
        );
        keys.push(key);
    }
    // Generation nonces make every incarnation a distinct key even when
    // the allocator reuses the address.
    let distinct: std::collections::HashSet<_> = keys.iter().copied().collect();
    assert_eq!(distinct.len(), 512, "every lock incarnation gets a fresh key");
    let after = table.len();
    assert!(
        after <= before + 8,
        "monitor table leaked across churn: {before} -> {after}"
    );
}

#[test]
fn reused_address_never_adopts_a_stale_monitor() {
    // Aliasing regression, constructed deterministically: plant a
    // monitor under the *same address* as a live lock but a different
    // generation — exactly what a dead predecessor at a reused address
    // leaves behind if teardown is skipped (e.g. a leaked box).
    let lock = SoleroLock::new();
    let key = lock.monitor_key();
    let stale_key = MonitorKey::new(key.addr, key.gen.wrapping_add(0x5EED));
    assert_ne!(key, stale_key);
    let table = MonitorTable::global();
    let stale = table.monitor_for(stale_key);

    // The planted entry must be invisible to the new lock...
    assert!(
        !lock.monitor_resident(),
        "a stale same-address entry must not alias the new lock"
    );
    // ...and inflation must mint a fresh monitor, not adopt the relic.
    let mut hit_fat = false;
    nest(&lock, NEST_DEPTH, &mut hit_fat);
    assert!(hit_fat, "recursion saturation must inflate");
    assert!(!lock.monitor_resident(), "deflated again after the nest");
    assert!(
        table.is_current(stale_key, &stale),
        "the relic belongs to its own key and must be untouched"
    );
    table.remove(stale_key); // test hygiene
}

#[test]
fn heap_slot_recycling_gets_a_fresh_key_and_monitor() {
    // The whole-stack aliasing scenario the generation key exists for:
    // an in-object compact lock inflates, the object dies with a
    // lingering table entry, the storage is recycled — the successor
    // object's lock must start thin and unaliased.
    const NODE: ClassId = ClassId::new(9);
    let heap = Heap::new(256);
    let space = CompactSpace::new();
    let table = MonitorTable::global();

    let obj = heap.alloc(NODE, 2).unwrap();
    let key1 = heap.lock_key(obj, 0).unwrap();
    {
        let r = space.lock(heap.slot_atomic(obj, 0).unwrap(), key1);
        // Drive the compact lock fat via reentrant write sections.
        let tid = solero_runtime::thread::ThreadId::current();
        for _ in 0..NEST_DEPTH {
            r.enter_write(tid);
        }
        assert!(r.is_inflated());
        assert!(r.monitor_resident());
        for _ in 0..NEST_DEPTH {
            r.exit_write(tid);
        }
        assert!(!r.monitor_resident(), "deflation pruned the entry");
    }
    // Simulate the lingering-entry hazard explicitly.
    let zombie = table.monitor_for(key1);
    heap.free(obj);

    let obj2 = heap.alloc(NODE, 2).unwrap();
    assert_eq!(obj2.raw(), obj.raw(), "free list recycles the storage");
    let key2 = heap.lock_key(obj2, 0).unwrap();
    assert_eq!(key1.addr, key2.addr, "same slot, same address");
    assert_ne!(key1, key2, "recycling bumps the generation");

    let r2 = space.lock(heap.slot_atomic(obj2, 0).unwrap(), key2);
    assert!(
        !r2.monitor_resident(),
        "successor lock must not see the zombie entry"
    );
    let got = r2.read_only(|| Ok::<_, Fault>(42)).unwrap();
    assert_eq!(got, 42, "zombie entry must not poison elided reads");
    assert!(table.is_current(key1, &zombie), "zombie still on its key");
    // Freeing storage with a lingering entry is what `detach` is for.
    space.detach(key1);
    assert!(table.existing(key1).is_none());
}
