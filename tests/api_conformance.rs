//! API conformance: thread-safety markers and trait hygiene that the
//! rest of the system (and downstream users) rely on.

use solero::{Fault, SoleroConfig, SoleroLock, SyncStrategy};
use solero_heap::{Heap, ObjRef};
use solero_jit::interp::Interpreter;
use solero_runtime::stats::StatsSnapshot;
use solero_runtime::word::{ConvWord, SoleroWord};
use solero_rwlock::{BravoLock, BravoPolicy, JavaRwLock, RawRwLock, ReadToken};
use solero_tasuki::TasukiLock;

fn assert_send<T: Send>() {}
fn assert_sync<T: Sync>() {}
fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn shared_types_are_send_and_sync() {
    assert_send_sync::<SoleroLock>();
    assert_send_sync::<TasukiLock>();
    assert_send_sync::<JavaRwLock>();
    assert_send_sync::<BravoLock>();
    assert_send_sync::<Heap>();
    assert_send_sync::<Interpreter>();
    assert_send_sync::<solero::LockStrategy>();
    assert_send_sync::<solero::RwStrategy<JavaRwLock>>();
    assert_send_sync::<solero::BravoStrategy>();
    assert_send_sync::<solero::SoleroStrategy>();
    assert_send::<Fault>();
    assert_sync::<Fault>();
}

#[test]
fn rw_strategy_spells_the_lock_explicitly() {
    // The PR 7 API redesign made the strategy generic over the lock;
    // the deprecated `RwLockStrategy` alias lived exactly one release
    // and is gone — the lock is always named at the type level now.
    let strat = solero::RwStrategy::<JavaRwLock>::new();
    assert_eq!(strat.name(), JavaRwLock::NAME);
    assert_send_sync::<solero::RwStrategy<JavaRwLock>>();
}

#[test]
fn raw_rwlock_trait_is_object_free_and_generic() {
    // Generic code over the trait works for both implementations, and
    // guards release on drop.
    fn exercise<L: RawRwLock>() {
        let lock = L::default();
        {
            let r = lock.read();
            let _ = r.token();
        }
        {
            let _w = lock.write();
        }
        assert!(lock.try_write().is_some());
        assert!(lock.try_read().is_some());
        let snap = lock.stats().snapshot();
        assert_eq!(snap.read_enters, 2);
        assert_eq!(snap.write_enters, 2);
    }
    exercise::<JavaRwLock>();
    exercise::<BravoLock>();
    assert_eq!(<JavaRwLock as RawRwLock>::NAME, "RWLock");
    assert_eq!(<BravoLock as RawRwLock>::NAME, "BRAVO-RW");
}

#[test]
fn errors_are_well_behaved() {
    // C-GOOD-ERR: error types implement Error + Send + Sync + 'static.
    fn is_good_error<E: std::error::Error + Send + Sync + 'static>() {}
    is_good_error::<Fault>();
    is_good_error::<solero_heap::OutOfMemory>();
    is_good_error::<solero_jit::verify::VerifyError>();
}

#[test]
fn value_types_are_copy_eq_hash_debug() {
    fn is_value<T: Copy + Eq + std::hash::Hash + std::fmt::Debug>() {}
    is_value::<ConvWord>();
    is_value::<SoleroWord>();
    is_value::<ObjRef>();
    is_value::<solero_heap::ClassId>();
    is_value::<Fault>();
    is_value::<solero_runtime::thread::ThreadId>();
}

#[test]
fn defaults_exist_and_match_new() {
    assert_eq!(SoleroConfig::default(), SoleroConfig::default());
    let _ = SoleroLock::default();
    let _ = TasukiLock::default();
    let _ = JavaRwLock::default();
    let _ = BravoLock::default();
    assert_eq!(BravoPolicy::default(), BravoLock::new().policy());
    let _ = StatsSnapshot::default();
    let _ = ObjRef::default();
    assert!(ObjRef::default().is_null());
}

#[test]
fn debug_representations_are_never_empty() {
    // C-DEBUG-NONEMPTY.
    let samples: Vec<String> = vec![
        format!("{:?}", SoleroLock::new()),
        format!("{:?}", TasukiLock::new()),
        format!("{:?}", JavaRwLock::new()),
        format!("{:?}", BravoLock::new()),
        format!("{:?}", BravoPolicy::minimal()),
        format!("{:?}", ReadToken::slow()),
        format!("{:?}", solero_rwlock::visible::global()),
        format!("{:?}", StatsSnapshot::default()),
        format!("{:?}", ConvWord::FREE),
        format!("{:?}", SoleroWord::INIT),
        format!("{:?}", ObjRef::NULL),
        format!("{:?}", Fault::NullPointer),
        format!("{:?}", SoleroConfig::default()),
    ];
    for s in samples {
        assert!(!s.is_empty());
    }
}
