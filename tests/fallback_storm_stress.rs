//! Fallback-storm stress for the inline seqlock and its contention
//! manager (tentpole of the inline-fast-path issue).
//!
//! The scenario the naive fixed-cadence spin collapsed under: every
//! thread is both a writer (CAS-competing on the sequence word) and a
//! reader whose speculation the other writers keep invalidating, so
//! the retry-exhausted fallback and the slow write path — the two
//! paths routed through the history-keyed contention manager — carry
//! essentially all the traffic. The testkit watchdog turns a livelock
//! into an abort, so *completion itself* is the starvation-freedom
//! assertion; on top of that the abort taxonomy must balance and the
//! manager must leave its fingerprints (back-off waits observed, and
//! per-thread failure history decayed once the storm ends).
//!
//! Seeds are pinned: scripts/ci.sh replays this test under the
//! SOLERO_TESTKIT_SEED matrix, and `seed_override` makes any failure
//! reproducible byte-for-byte.

use std::sync::atomic::{AtomicU64, Ordering};

use solero::{SeqLock, SoleroConfig};
use solero_runtime::contention::{thread_history, ContentionConfig};
use solero_testkit::{seed_override, stress, StressConfig};

const THREADS: usize = 6;
const OPS: usize = 2_000;

/// A tiny contention config so the storm actually exhausts attempt
/// budgets (exercising the re-entry loop) instead of hiding inside one
/// long managed probe sequence.
fn storm_config() -> ContentionConfig {
    ContentionConfig {
        attempts: 4,
        base: 8,
        shift_cap: 4,
        cap: 256,
        decay_after: 2,
        yield_threshold: 64,
    }
}

/// Every thread alternates torn-pair-sensitive reads with writes that
/// keep the pair coupled; nobody may starve and the books must balance.
#[test]
fn fallback_storm_sustains_progress() {
    let lock = SeqLock::with_config(
        SoleroConfig::builder().contention(storm_config()).build(),
        [0u64; 2],
    );
    let completed = AtomicU64::new(0);
    let writes = AtomicU64::new(0);
    let reads = AtomicU64::new(0);

    stress(
        "seqlock-fallback-storm",
        &StressConfig::new(THREADS, 1, seed_override(0x5704_4A11)),
        |w| {
            let mut my_writes = 0u64;
            let mut my_reads = 0u64;
            for _ in 0..OPS {
                if w.rng.gen_range(0u32..4) == 0 {
                    lock.update_inline(|v| {
                        v[0] += 1;
                        v[1] += 1;
                    });
                    my_writes += 1;
                } else {
                    let [a, b] = lock.read_inline();
                    assert_eq!(a, b, "storm read observed a torn pair");
                    my_reads += 1;
                }
            }
            writes.fetch_add(my_writes, Ordering::Relaxed);
            reads.fetch_add(my_reads, Ordering::Relaxed);
            completed.fetch_add(1, Ordering::Relaxed);
            // The storm is over for this thread: a handful of
            // uncontended successes must decay its failure history —
            // the "success forgets" half of arXiv 1305.5800.
            for _ in 0..64 {
                lock.update_inline(|v| {
                    v[0] += 1;
                    v[1] += 1;
                });
            }
        },
    );

    assert_eq!(
        completed.load(Ordering::Relaxed),
        THREADS as u64,
        "every thread survived the storm (watchdog would abort a livelock)"
    );
    let total_writes = writes.load(Ordering::Relaxed) + (THREADS * 64) as u64;
    assert_eq!(
        lock.read_inline(),
        [total_writes, total_writes],
        "every write landed exactly once"
    );
    let s = lock.stats().snapshot();
    assert_eq!(s.write_enters, total_writes, "{s:?}");
    // +1 for the verification read above.
    assert_eq!(s.read_enters, reads.load(Ordering::Relaxed) + 1, "{s:?}");
    assert_eq!(s.read_aborts, s.abort_reason_sum(), "taxonomy balances: {s:?}");
    assert_eq!(
        s.fallback_acquires, s.abort_retry_exhausted,
        "every fallback is booked exactly once: {s:?}"
    );
    assert_eq!(
        s.elision_success + s.fallback_acquires,
        s.read_enters,
        "every typed read completes exactly one way: {s:?}"
    );
    assert_eq!(lock.raw_seq() & 1, 0, "the storm must end released");
    // This (main) thread ran the verification read only; its history
    // must be clean either way — the observability hook works.
    let _ = thread_history();
}

/// The decay coda, deterministic and single-threaded: a thread that
/// accumulated history under contention sheds it through uncontended
/// successes, so the next storm starts from a polite cadence.
#[test]
fn history_decays_after_the_storm() {
    let cfg = storm_config();
    let mut state = solero_runtime::contention::BackoffState::new(seed_override(0x5704_4A12));
    for _ in 0..10 {
        state.on_failure(&cfg);
    }
    let peak = state.history();
    assert!(peak > 0);
    for _ in 0..peak * cfg.decay_after {
        state.on_success(&cfg);
    }
    assert_eq!(state.history(), 0, "success must fully decay the history");
}
