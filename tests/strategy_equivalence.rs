//! Cross-crate property: the three lock strategies are observationally
//! equivalent — the same operation sequence leaves the same map state
//! and returns the same values, whatever the lock implementation.

use solero_testkit::rng::TestRng;
use solero::{
    BravoStrategy, Checkpoint, JavaRwLock, LockStrategy, NullCheckpoint, RwStrategy,
    SoleroConfig, SoleroStrategy,
    SyncStrategy,
};
use solero_collections::{JHashMap, JTreeMap};
use solero_heap::Heap;

fn drive<S: SyncStrategy>(strat: &S, seed: u64) -> (Vec<(i64, i64)>, Vec<Option<i64>>) {
    let heap = Heap::new(1 << 20);
    let hash = JHashMap::new(&heap, 16).unwrap();
    let tree = JTreeMap::new(&heap).unwrap();
    let mut rng = TestRng::seed_from_u64(seed);
    let mut observed = Vec::new();
    for _ in 0..3_000 {
        let k = rng.gen_range(-64i64..64);
        match rng.gen_range(0..6) {
            0 => strat.write_section(|| {
                hash.put(&heap, k, k * 5).unwrap();
            }),
            1 => strat.write_section(|| {
                tree.put(&heap, k, k * 9).unwrap();
            }),
            2 => strat.write_section(|| {
                hash.remove(&heap, k).unwrap();
            }),
            3 => strat.write_section(|| {
                tree.remove(&heap, k).unwrap();
            }),
            4 => observed.push(
                strat
                    .read_section(|ck| hash.get(&heap, k, ck as &mut dyn Checkpoint))
                    .unwrap(),
            ),
            _ => observed.push(
                strat
                    .read_section(|ck| tree.get(&heap, k, ck as &mut dyn Checkpoint))
                    .unwrap(),
            ),
        }
    }
    let mut entries = hash.entries(&heap, &mut NullCheckpoint).unwrap();
    entries.sort_unstable();
    entries.extend(tree.entries(&heap, &mut NullCheckpoint).unwrap());
    (entries, observed)
}

#[test]
fn same_sequence_same_state_across_strategies() {
    for seed in [1u64, 42, 0xdead] {
        let a = drive(&LockStrategy::new(), seed);
        let b = drive(&RwStrategy::<JavaRwLock>::new(), seed);
        let bravo = drive(&BravoStrategy::new(), seed);
        let c = drive(&SoleroStrategy::new(), seed);
        let d = drive(
            &SoleroStrategy::configured(SoleroConfig::builder().unelided(true).build()),
            seed,
        );
        let e = drive(
            &SoleroStrategy::configured(SoleroConfig::builder().adaptive(true).build()),
            seed,
        );
        assert_eq!(a, b, "Lock vs RWLock diverged (seed {seed})");
        assert_eq!(a, bravo, "Lock vs BRAVO-RW diverged (seed {seed})");
        assert_eq!(a, c, "Lock vs SOLERO diverged (seed {seed})");
        assert_eq!(a, d, "Lock vs Unelided-SOLERO diverged (seed {seed})");
        assert_eq!(a, e, "Lock vs Adaptive-SOLERO diverged (seed {seed})");
    }
}

#[test]
fn table1_read_ratio_identical_across_strategies() {
    fn ratio<S: SyncStrategy>(s: &S) -> f64 {
        let heap = Heap::new(1 << 16);
        let map = JHashMap::new(&heap, 16).unwrap();
        map.put(&heap, 1, 1).unwrap();
        for i in 0..200 {
            if i % 20 == 0 {
                s.write_section(|| {
                    map.put(&heap, i, i).unwrap();
                });
            } else {
                s.read_section(|ck| map.get(&heap, 1, ck as &mut dyn Checkpoint))
                    .unwrap();
            }
        }
        s.snapshot().read_only_ratio()
    }
    let a = ratio(&LockStrategy::new());
    let b = ratio(&BravoStrategy::new());
    let c = ratio(&SoleroStrategy::new());
    assert!((a - 0.95).abs() < 1e-9);
    assert_eq!(a, b);
    assert_eq!(a, c);
}
