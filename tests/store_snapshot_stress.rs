//! Snapshot-isolation stress over the [`solero_store::KvStore`] MVCC
//! store: one writer per shard installs whole-shard round-tagged
//! batches while elided readers scan and a checkpointer takes
//! whole-store cuts, all under real preemption.
//!
//! The round-tag construction makes mixed-epoch cuts self-evident:
//! every batch writes the *same* value to *every* key of its shard, and
//! each batch bumps the shard version by exactly one, so any validated
//! observation must be value-uniform with `version == value + 1` (the
//! `+ 1` is the preload batch). A reader that validated a half-installed
//! batch would surface instantly as a non-uniform scan or a cut whose
//! version disagrees with its data.
//!
//! Pinned at teardown: the abort taxonomy balances
//! (`read_aborts == abort_reason_sum()` — every epoch abort was
//! classified, retried and recovered), the write count matches the
//! batch schedule exactly, the final checkpoint is the last batch of
//! every shard, and the heap passes its integrity walk.
//!
//! Driven by [`solero_testkit::stress`] over a fixed root-seed matrix;
//! `SOLERO_TESTKIT_SEED` replays any run.

use std::sync::atomic::{AtomicU64, Ordering};

use solero::SoleroStrategy;
use solero_store::{KvStore, StoreConfig};
use solero_testkit::{seed_matrix, seed_override, stress, StressConfig};

const SHARDS: usize = 4;
const SPAN: i64 = 64;
const THREADS: usize = 8; // 4 shard writers + 3 readers + 1 checkpointer
const ROUNDS: usize = 4;
/// Whole-shard batches each writer installs per round.
const BATCHES: usize = 8;
/// Get/scan probes per reader per round.
const OPS: usize = 300;
/// Whole-store cuts the checkpointer takes per round.
const CUTS: usize = 12;

/// One whole-shard round-tag batch: every key of `shard` set to `tag`.
fn batch(shard: usize, tag: i64) -> Vec<(i64, i64)> {
    let base = shard as i64 * SPAN;
    (base..base + SPAN).map(|k| (k, tag)).collect()
}

/// Asserts a validated `(version, pairs)` observation of `shard` is a
/// single-epoch cut: complete, value-uniform, and version-bound.
fn assert_single_epoch(seed: u64, shard: usize, version: u64, pairs: &[(i64, i64)]) {
    assert_eq!(
        pairs.len(),
        SPAN as usize,
        "seed {seed:#x}: shard {shard} cut lost keys"
    );
    let tag = pairs[0].1;
    assert!(
        pairs.iter().all(|&(_, v)| v == tag),
        "seed {seed:#x}: shard {shard} validated a mixed-epoch cut: {pairs:?}"
    );
    assert_eq!(
        version,
        tag as u64 + 1,
        "seed {seed:#x}: shard {shard} cut of version {version} carries batch {tag}"
    );
}

#[test]
fn round_tagged_batches_never_tear_across_a_snapshot() {
    for (i, seed) in seed_matrix(seed_override(0x5EED_5705), 3).into_iter().enumerate() {
        let store = KvStore::new(
            StoreConfig::new(SHARDS as i64 * SPAN).with_shards(SHARDS),
            SoleroStrategy::new,
        );
        // Preload batch 0 everywhere: version 1, all values 0, so every
        // key is present from the first probe onward.
        for s in 0..SHARDS {
            store.put_many(&batch(s, 0)).expect("preload batch");
        }
        // Monotone per-shard batch tags; each shard has one writer, so
        // the sequence is dense and `version == tag + 1` stays exact.
        let tags: Vec<AtomicU64> = (0..SHARDS).map(|_| AtomicU64::new(0)).collect();

        stress(
            &format!("store-snapshot-m{i}"),
            &StressConfig::new(THREADS, ROUNDS, seed),
            |w| {
                if w.id < SHARDS {
                    // Shard writer: install whole-shard batches, spaced
                    // so readers validate between installs too.
                    for _ in 0..BATCHES {
                        let tag = tags[w.id].fetch_add(1, Ordering::Relaxed) + 1;
                        store
                            .put_many(&batch(w.id, tag as i64))
                            .expect("batch install");
                        for _ in 0..w.rng.gen_range(100..300) {
                            std::hint::spin_loop();
                        }
                    }
                } else if w.id < THREADS - 1 {
                    // Reader: elided point-gets, bounded scans, and
                    // versioned shard snapshots over random shards.
                    for _ in 0..OPS {
                        let shard = w.rng.gen_range(0..SHARDS as u64) as usize;
                        let base = shard as i64 * SPAN;
                        match w.rng.gen_range(0..3u32) {
                            0 => {
                                let key = base + w.rng.gen_range(0..SPAN as u64) as i64;
                                let got = store.get(key).expect("get must settle");
                                assert!(got.is_some(), "seed {seed:#x}: key {key} vanished");
                            }
                            1 => {
                                let pairs =
                                    store.scan(base, SPAN as usize).expect("scan must settle");
                                let tag = pairs[0].1;
                                assert!(
                                    pairs.len() == SPAN as usize
                                        && pairs.iter().all(|&(_, v)| v == tag),
                                    "seed {seed:#x}: mixed-epoch scan of shard {shard}: {pairs:?}"
                                );
                            }
                            _ => {
                                let snap = store.shard_snapshot(shard).expect("snapshot settles");
                                assert_single_epoch(seed, shard, snap.version, &snap.pairs);
                            }
                        }
                    }
                } else {
                    // Checkpointer: whole-store cuts; every shard of a
                    // cut must individually be a single-epoch snapshot.
                    for _ in 0..CUTS {
                        let cut = store.checkpoint().expect("checkpoint must settle");
                        for shard in &cut.shards {
                            assert_single_epoch(seed, shard.shard, shard.version, &shard.pairs);
                        }
                    }
                }
            },
        );

        // Write schedule is exact: one preload batch per shard plus
        // BATCHES × ROUNDS per shard writer, one write section each.
        let expected_writes = (SHARDS + SHARDS * ROUNDS * BATCHES) as u64;
        let s = store.snapshot_stats();
        assert_eq!(s.write_enters, expected_writes, "seed {seed:#x}: {s:?}");
        assert_eq!(
            s.read_aborts,
            s.abort_reason_sum(),
            "seed {seed:#x}: every abort classified exactly once: {s:?}"
        );
        // Quiescent final cut: the last batch of every shard, in full.
        let last = (ROUNDS * BATCHES) as i64;
        let cut = store.checkpoint().expect("quiescent checkpoint");
        for shard in &cut.shards {
            assert_single_epoch(seed, shard.shard, shard.version, &shard.pairs);
            assert_eq!(
                shard.pairs[0].1, last,
                "seed {seed:#x}: shard {} missed batches",
                shard.shard
            );
        }
        store
            .heap()
            .check_integrity()
            .expect("heap left consistent");
    }
}
