//! Structural-churn stress (ISSUE 4 satellite): rehashes and tree
//! rotations are forced to happen *while* elided readers are inside the
//! structures, on the native scheduler — the stochastic companion to
//! the model-checked scenarios in crates/mc/tests/collections_mc.rs.
//!
//! The `JHashMap` starts at the minimum capacity (2) so the write load
//! drives it through the whole doubling ladder under reader fire, with
//! extra explicit `force_resize` calls sprinkled in; the `JTreeMap`
//! churns inserts/removes that keep re-balancing the tree. At teardown
//! the PR-2 abort-taxonomy invariants must hold: every abort classified
//! exactly once, fallbacks matching retry exhaustion, and inflation
//! aborts only ever caused by real inflations.
//!
//! Driven by [`solero_testkit::stress`] over the fixed root-seed matrix
//! (`SOLERO_TESTKIT_SEED` overrides it).

use std::sync::atomic::{AtomicU64, Ordering};

use solero::{Checkpoint, SoleroStrategy, SyncStrategy};
use solero_collections::{JHashMap, JTreeMap, MAP_CLASS};
use solero_heap::Heap;
use solero_testkit::{seed_matrix, seed_override, stress, StressConfig};

/// Invariant: key `k` only ever maps to `k * MULT`.
const MULT: i64 = 1_000_003;
/// Small key space maximizes structural collisions.
const KEYS: i64 = 192;
/// Operations per worker per round.
const OPS: usize = 2_500;
/// Workers 0..WRITERS mutate; the rest read speculatively.
const WRITERS: usize = 2;
const THREADS: usize = 6;
const ROUNDS: usize = 3;
/// Forced rehashes stop doubling past this capacity so the doubling
/// ladder stays bounded however many writers pile on.
const MAX_FORCED_CAP: u32 = 2_048;

fn run_matrix(name: &str, root: u64, mut round: impl FnMut(&str, u64)) {
    for (i, seed) in seed_matrix(seed_override(root), 3).into_iter().enumerate() {
        round(&format!("{name}-m{i}"), seed);
    }
}

/// Teardown check shared by both structures: the abort taxonomy from
/// the PR-2 observability layer must balance exactly.
fn assert_taxonomy(strat: &SoleroStrategy) {
    let s = strat.snapshot();
    assert_eq!(
        s.read_aborts,
        s.abort_reason_sum(),
        "every abort classified exactly once: {s:?}"
    );
    assert_eq!(s.fallback_acquires, s.abort_retry_exhausted, "{s:?}");
    if s.abort_inflation > 0 {
        assert!(s.inflations > 0, "inflation aborts require an inflation: {s:?}");
    }
}

#[test]
fn hashmap_rehash_storm_under_elided_readers() {
    run_matrix("rehash-storm", 0x5EED_AB01, |name, seed| {
        let heap = Heap::new(1 << 22);
        // Minimum capacity: the very first inserts already cross the
        // load factor, so readers race the rehash from the start.
        let map = JHashMap::new(&heap, 2).unwrap();
        let strat = SoleroStrategy::new();
        let validated_reads = AtomicU64::new(0);

        stress(name, &StressConfig::new(THREADS, ROUNDS, seed), |w| {
            if w.id < WRITERS {
                for op in 0..OPS {
                    let k = w.rng.gen_range(0..KEYS);
                    if op % 500 == 250 {
                        // Extra swap-and-free windows beyond the ones
                        // the load factor produces, capacity-gated so
                        // concurrent forcing cannot double unboundedly.
                        strat.write_section(|| {
                            let table = heap.load_ref(map.root(), MAP_CLASS, 0).unwrap();
                            if heap.len_of(table).unwrap() < MAX_FORCED_CAP {
                                map.force_resize(&heap).unwrap();
                            }
                        });
                    } else if w.rng.gen_bool(0.25) {
                        strat.write_section(|| {
                            map.remove(&heap, k).unwrap();
                        });
                    } else {
                        strat.write_section(|| {
                            map.put(&heap, k, k * MULT).unwrap();
                        });
                    }
                }
            } else {
                for _ in 0..OPS {
                    let k = w.rng.gen_range(0..KEYS);
                    let got = strat
                        .read_section(|ck| map.get(&heap, k, ck as &mut dyn Checkpoint))
                        .expect("no genuine faults in a pure read");
                    if let Some(v) = got {
                        assert_eq!(v, k * MULT, "validated read of key {k} mid-rehash is torn");
                    }
                    validated_reads.fetch_add(1, Ordering::Relaxed);
                }
            }
        });

        // The storm really happened: the table left its seed capacity.
        let table = heap.load_ref(map.root(), MAP_CLASS, 0).unwrap();
        assert!(heap.len_of(table).unwrap() >= 4, "no rehash ever ran");
        // Quiescent sweep: surviving entries still honor the invariant.
        for k in 0..KEYS {
            let got = strat
                .read_section(|ck| map.get(&heap, k, ck as &mut dyn Checkpoint))
                .unwrap();
            if let Some(v) = got {
                assert_eq!(v, k * MULT);
            }
        }
        let expected_reads = ((THREADS - WRITERS) * ROUNDS * OPS) as u64;
        assert_eq!(validated_reads.load(Ordering::Relaxed), expected_reads);
        assert_taxonomy(&strat);
    });
}

#[test]
fn treemap_rotation_churn_under_elided_readers() {
    run_matrix("rotation-churn", 0x5EED_AB02, |name, seed| {
        let heap = Heap::new(1 << 22);
        let map = JTreeMap::new(&heap).unwrap();
        let strat = SoleroStrategy::new();
        let validated_reads = AtomicU64::new(0);

        stress(name, &StressConfig::new(THREADS, ROUNDS, seed), |w| {
            if w.id < WRITERS {
                for _ in 0..OPS {
                    let k = w.rng.gen_range(0..KEYS);
                    // Heavier remove share than the hashmap storm:
                    // deletions exercise the other rebalancing paths
                    // (recoloring plus both rotation directions).
                    if w.rng.gen_bool(0.4) {
                        strat.write_section(|| {
                            map.remove(&heap, k).unwrap();
                        });
                    } else {
                        strat.write_section(|| {
                            map.put(&heap, k, k * MULT).unwrap();
                        });
                    }
                }
            } else {
                for _ in 0..OPS {
                    let k = w.rng.gen_range(0..KEYS);
                    let snap = strat
                        .read_section(|ck| {
                            let v = map.get(&heap, k, &mut *ck as &mut dyn Checkpoint)?;
                            let first = map.first_key(&heap, &mut *ck as &mut dyn Checkpoint)?;
                            Ok((v, first))
                        })
                        .expect("no genuine faults in a pure read");
                    if let Some(v) = snap.0 {
                        assert_eq!(v, k * MULT, "validated read of key {k} mid-rotation is torn");
                        // Coherent snapshot: key k was present, so the
                        // minimum the same section saw can be at most k.
                        let first = snap.1.expect("key k present but tree seen empty");
                        assert!(first <= k, "first_key {first} > present key {k}");
                    }
                    validated_reads.fetch_add(1, Ordering::Relaxed);
                }
            }
        });

        // Quiescent integrity: churn left a legal red-black tree with
        // the value invariant intact.
        map.check_invariants(&heap).unwrap();
        for k in 0..KEYS {
            let got = strat
                .read_section(|ck| map.get(&heap, k, ck as &mut dyn Checkpoint))
                .unwrap();
            if let Some(v) = got {
                assert_eq!(v, k * MULT);
            }
        }
        let expected_reads = ((THREADS - WRITERS) * ROUNDS * OPS) as u64;
        assert_eq!(validated_reads.load(Ordering::Relaxed), expected_reads);
        assert_taxonomy(&strat);
    });
}
