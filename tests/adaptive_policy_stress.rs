//! Write-bursty stress for the adaptive elision policy (the tentpole's
//! end-to-end evidence): over a pinned seed matrix, drive
//! [`BurstyBench`] through quiet → burst → quiet → burst → quiet and
//! assert the policy actually *moves* — the elision rate collapses
//! under each burst (auto-disable) and recovers after it (re-arm) —
//! while the abort taxonomy stays balanced throughout.
//!
//! The same matrix replays on every run; `SOLERO_TESTKIT_SEED`
//! overrides the root (scripts/ci.sh pins one for the record).

use solero::{SoleroConfig, SoleroStrategy};
use solero_runtime::contention::ContentionConfig;
use solero_testkit::{seed_matrix, seed_override};
use solero_workloads::bursty::{BurstyBench, BurstyConfig, Phase, PhaseReport, PHASES};

/// During a burst the writers hold the lock almost continuously, so
/// elided completions must fall below this floor…
const BURST_CEILING: f64 = 0.55;
/// …and once the burst ends, the re-armed policy must climb back above
/// this. The worst leftover is one maximal forfeit window
/// (`max_forfeit` = 128 sections with default budgets) out of 3 000
/// quiet reads — under 5%.
const RECOVERY_FLOOR: f64 = 0.90;

fn run_one(name: &str, seed: u64) -> Vec<PhaseReport> {
    // The burst's hostility depends on losing writers parking promptly:
    // the park inflates the lock, and the fat word is what keeps
    // speculating readers aborting for the whole phase. The default
    // contention manager is *too polite* for this workload on a small
    // host — its back-off lets the loser re-acquire by CAS without ever
    // parking, the lock never inflates, and readers elide clean through
    // the writers' gaps (zero aborts, nothing for the policy to react
    // to). `minimal()` restores the prompt-park regime these thresholds
    // were calibrated against; the manager itself is exercised by
    // `contention_props` and `fallback_storm_stress`.
    let bench = BurstyBench::new(BurstyConfig::stress(), || {
        Box::new(SoleroStrategy::configured(
            SoleroConfig::builder()
                .adaptive(true)
                .contention(ContentionConfig::minimal())
                .build(),
        ))
    });
    let reports = bench.run_trajectory(&PHASES, seed);
    for r in &reports {
        eprintln!(
            "[{name}] {:>5}: rate {:.3} skips {:>5} disables {:>3} rearms {:>3}",
            r.phase.name(),
            r.elision_rate(),
            r.stats.policy_skips,
            r.stats.policy_disables,
            r.stats.policy_rearms,
        );
    }

    // Fresh lock, no writers: everything elides, nothing is skipped.
    assert_eq!(reports[0].phase, Phase::Quiet);
    assert!(
        reports[0].elision_rate() > 0.99,
        "[{name}] fresh quiet phase must elide freely: {:.3}",
        reports[0].elision_rate()
    );
    assert_eq!(reports[0].stats.policy_skips, 0, "[{name}]");

    for (i, r) in reports.iter().enumerate() {
        let s = &r.stats;
        // Taxonomy invariants hold in every window, not just at the end.
        assert_eq!(s.read_aborts, s.abort_reason_sum(), "[{name}] phase {i}: {s}");
        assert_eq!(s.abort_retry_exhausted, s.fallback_acquires, "[{name}] phase {i}: {s}");
        assert!(
            s.elision_success + s.fallback_acquires + s.policy_skips <= s.read_enters,
            "[{name}] phase {i}: a section completes at most one way: {s}"
        );
        match r.phase {
            Phase::Burst => {
                assert!(
                    r.elision_rate() < BURST_CEILING,
                    "[{name}] phase {i}: burst must collapse the elision rate, \
                     got {:.3}: {s}",
                    r.elision_rate()
                );
                assert!(
                    s.policy_disables > 0,
                    "[{name}] phase {i}: burst must exhaust a retry budget: {s}"
                );
                assert!(
                    s.policy_skips > 0,
                    "[{name}] phase {i}: forfeited sections must acquire: {s}"
                );
            }
            Phase::Quiet if i > 0 => {
                assert!(
                    r.elision_rate() > RECOVERY_FLOOR,
                    "[{name}] phase {i}: quiet phase must re-arm and recover, \
                     got {:.3}: {s}",
                    r.elision_rate()
                );
            }
            Phase::Quiet => {}
        }
    }

    // The re-arm edge itself must have fired somewhere in the run.
    let rearms: u64 = reports.iter().map(|r| r.stats.policy_rearms).sum();
    let disables: u64 = reports.iter().map(|r| r.stats.policy_disables).sum();
    assert!(rearms > 0, "[{name}] the policy never re-armed");
    assert!(rearms <= disables, "[{name}] re-arm without a disable");

    // Teardown: the whole-run totals balance too.
    let total = bench.strategy().snapshot();
    assert_eq!(total.read_aborts, total.abort_reason_sum(), "[{name}] {total}");
    assert_eq!(total.abort_retry_exhausted, total.fallback_acquires, "[{name}] {total}");
    reports
}

#[test]
fn bursts_disable_elision_and_quiet_rearms_it() {
    for (i, seed) in seed_matrix(seed_override(0x5EED_ADA7), 3)
        .into_iter()
        .enumerate()
    {
        run_one(&format!("bursty-m{i}"), seed);
    }
}

/// The unelided control: without the adaptive policy the same bursts
/// produce zero policy activity — the counters belong to the policy
/// alone, and the baseline keeps speculating into the writers.
#[test]
fn static_solero_never_skips() {
    let bench = BurstyBench::new(BurstyConfig::quick(), || {
        Box::new(SoleroStrategy::new())
    });
    let reports = bench.run_trajectory(&PHASES[..2], seed_override(0x5EED_ADA8));
    for r in &reports {
        assert_eq!(r.stats.policy_skips, 0, "{}", r.stats);
        assert_eq!(r.stats.policy_disables, 0, "{}", r.stats);
        assert_eq!(r.stats.policy_rearms, 0, "{}", r.stats);
    }
}
