//! Abort-taxonomy stress: hostile writers vs elided readers, checking
//! that the per-reason abort counters stay consistent under real
//! interference (observability-layer satellite).
//!
//! Invariants checked on every pinned seed:
//!
//! * every read abort is classified under exactly one reason
//!   (`read_aborts == abort_reason_sum()`);
//! * a retry-exhausted abort and a fallback acquisition are the same
//!   event seen from two counters (`abort_retry_exhausted ==
//!   fallback_acquires`);
//! * inflation-reason aborts only occur when the lock actually inflated
//!   (`abort_inflation > 0 ⇒ inflations > 0`) — note a single hostile
//!   writer CAN inflate the lock (reader spin exhaustion enters via the
//!   monitor), so the converse is deliberately not asserted;
//! * a lock deflates at most once per inflation
//!   (`deflations ≤ inflations`);
//! * a quiet lock (no writers) never aborts at all.

use std::sync::atomic::{AtomicU64, Ordering};

use solero::{Fault, SoleroConfig, SoleroStrategy, SyncStrategy, WriteIntent};
use solero_runtime::stats::StatsSnapshot;
use solero_testkit::{seed_matrix, seed_override, stress, StressConfig};

/// The SOLERO variants the sweeps cover: the static lock and the
/// adaptive contender. The taxonomy invariants are policy-independent —
/// a policy skip is not an abort — so both must satisfy every one.
fn solero_fleet() -> [(&'static str, SoleroStrategy); 2] {
    [
        ("SOLERO", SoleroStrategy::new()),
        (
            "Adaptive-SOLERO",
            SoleroStrategy::configured(SoleroConfig::builder().adaptive(true).build()),
        ),
    ]
}

const THREADS: usize = 6;
/// Workers `0..WRITERS` mutate; the rest read speculatively.
const WRITERS: usize = 2;
const ROUNDS: usize = 2;
const OPS: usize = 3_000;
const CELLS: usize = 64;

/// Writers hammer write sections over a small cell array while readers
/// run speculative read sections with a mid-section checkpoint.
fn hostile_run(name: &str, seed: u64, strat: &SoleroStrategy) -> StatsSnapshot {
    let cells: Vec<AtomicU64> = (0..CELLS).map(|_| AtomicU64::new(0)).collect();
    stress(name, &StressConfig::new(THREADS, ROUNDS, seed), |w| {
        if w.id < WRITERS {
            for _ in 0..OPS {
                let k = w.rng.gen_range(0..CELLS);
                strat.write_section(|| {
                    cells[k].fetch_add(1, Ordering::Relaxed);
                });
            }
        } else {
            for _ in 0..OPS {
                let a = w.rng.gen_range(0..CELLS);
                let b = w.rng.gen_range(0..CELLS);
                let _ = strat
                    .read_section(|ck| {
                        let x = cells[a].load(Ordering::Relaxed);
                        ck.checkpoint()?;
                        let y = cells[b].load(Ordering::Relaxed);
                        Ok(x.wrapping_add(y))
                    })
                    .expect("pure reads cannot genuinely fault");
            }
        }
    });
    strat.snapshot()
}

#[test]
fn quiet_readers_never_abort() {
    // Quiet implies zero aborts for every SOLERO variant — including
    // the adaptive one, whose policy must stay entirely out of the way
    // (no skips, no disables) when speculation never fails.
    for (name, strat) in solero_fleet() {
        let cell = AtomicU64::new(7);
        for _ in 0..10_000 {
            let v = strat
                .read_section(|_| Ok(cell.load(Ordering::Relaxed)))
                .expect("no faults");
            assert_eq!(v, 7);
        }
        let s = strat.snapshot();
        assert_eq!(s.read_aborts, 0, "[{name}] {s}");
        assert_eq!(s.abort_reason_sum(), 0, "[{name}] {s}");
        assert_eq!(s.fallback_acquires, 0, "[{name}] {s}");
        assert_eq!(s.policy_skips, 0, "[{name}] quiet policy must not skip: {s}");
        assert_eq!(s.policy_disables, 0, "[{name}] {s}");
    }
}

#[test]
fn taxonomy_invariants_hold_under_hostile_writers() {
    // Whether collisions actually occur depends on scheduling (release
    // builds can race through the tiny sections untouched), so this
    // test checks the invariants that must hold at ANY abort count; the
    // held-lock test below guarantees a nonzero count deterministically.
    for (i, seed) in seed_matrix(seed_override(0xAB0_7AC5), 3)
        .into_iter()
        .enumerate()
    {
        for (name, strat) in solero_fleet() {
            let s = hostile_run(&format!("taxonomy-m{i}"), seed, &strat);
            assert_eq!(
                s.read_aborts,
                s.abort_reason_sum(),
                "[{name}] aborts must be classified exactly once: {s}"
            );
            assert_eq!(
                s.abort_retry_exhausted, s.fallback_acquires,
                "[{name}] retry-exhausted aborts and fallback acquires are one event: {s}"
            );
            if s.abort_inflation > 0 {
                assert!(s.inflations > 0, "[{name}] inflation aborts without inflation: {s}");
            }
            assert!(
                s.deflations <= s.inflations,
                "[{name}] a lock deflates at most once per inflation: {s}"
            );
            assert!(
                s.elision_success + s.fallback_acquires + s.policy_skips <= s.read_enters,
                "[{name}] a section completes at most one way: {s}"
            );
        }
    }
}

#[test]
fn a_held_lock_forces_entry_aborts() {
    // A writer camps on the lock while readers hammer read sections the
    // whole time: any read attempted during the hold finds the lock
    // word busy at entry, so the recorded reasons must include
    // locked-at-entry and/or inflation (spin exhaustion under a long
    // hold legitimately inflates).
    use std::sync::atomic::AtomicBool;
    use std::time::{Duration, Instant};

    let strat = SoleroStrategy::new();
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        for _ in 0..3 {
            s.spawn(|| {
                while !stop.load(Ordering::Acquire) {
                    let _ = strat
                        .read_section(|_| Ok(()))
                        .expect("empty reads cannot genuinely fault");
                }
            });
        }
        // Handshake on the counters rather than sleeping fixed quanta:
        // under parallel test load a timed hold can end before any
        // starved reader gets a single attempt in. Hold the lock until
        // an entry-time abort is actually on the books (deadline-capped
        // so a genuine regression fails the asserts below, not the
        // clock).
        let deadline = Instant::now() + Duration::from_secs(10);
        while strat.snapshot().read_enters == 0 && Instant::now() < deadline {
            std::thread::yield_now();
        }
        strat.write_section(|| {
            while Instant::now() < deadline {
                let s = strat.snapshot();
                if s.abort_locked_at_entry + s.abort_inflation > 0 {
                    break;
                }
                std::thread::yield_now();
            }
        });
        stop.store(true, Ordering::Release);
    });
    let s = strat.snapshot();
    assert!(s.read_aborts > 0, "no reader collided with the hold: {s}");
    assert_eq!(s.read_aborts, s.abort_reason_sum(), "{s}");
    assert!(
        s.abort_locked_at_entry + s.abort_inflation > 0,
        "a held lock must surface as an entry-time reason: {s}"
    );
    if s.abort_inflation > 0 {
        assert!(s.inflations > 0, "{s}");
    }
    assert!(
        s.deflations <= s.inflations,
        "a lock deflates at most once per inflation: {s}"
    );
}

#[test]
fn observed_reason_matches_injected_interference() {
    // Deterministic injection: a writer changes the lock word while the
    // reader's first speculative attempt is in flight, so the section
    // must record a word-changed-at-exit abort (plus, with the default
    // fallback threshold of 1, the retry-exhausted fallback).
    let strat = SoleroStrategy::new();
    let lock = strat.lock();
    let data = AtomicU64::new(0);
    let mut attempt = 0u32;
    let v = strat
        .read_section(|_| {
            attempt += 1;
            if attempt == 1 {
                std::thread::scope(|sc| {
                    sc.spawn(|| lock.write(|| data.store(1, Ordering::Release)));
                });
            }
            Ok(data.load(Ordering::Acquire))
        })
        .expect("no genuine faults");
    assert_eq!(v, 1, "the re-executed attempt sees the write");
    let s = strat.snapshot();
    assert_eq!(s.abort_word_changed_at_exit, 1, "{s}");
    assert_eq!(s.abort_retry_exhausted, 1, "{s}");
    assert_eq!(s.read_aborts, s.abort_reason_sum(), "{s}");
}

#[test]
fn upgrade_failure_is_one_abort() {
    // A failed read-mostly upgrade goes straight to the fallback lock
    // (Figure 17, line 13). That is ONE abort, classified as
    // retry-exhausted-fallback by the fallback branch; it must not
    // additionally be booked as word-changed-at-exit by the settling
    // code, or `read_aborts == abort_reason_sum()` breaks.
    let strat = SoleroStrategy::new();
    let lock = strat.lock();
    let data = AtomicU64::new(0);
    let mut attempt = 0u32;
    lock.read_mostly(|s| {
        attempt += 1;
        if attempt == 1 {
            // Invalidate the speculation before the upgrade point.
            std::thread::scope(|sc| {
                sc.spawn(|| lock.write(|| {}));
            });
        }
        s.ensure_write()?;
        data.fetch_add(1, Ordering::Relaxed);
        Ok::<_, Fault>(())
    })
    .expect("upgrade failure re-executes under the lock");
    assert_eq!(attempt, 2, "failed upgrade re-executes exactly once");

    let s = strat.snapshot();
    assert_eq!(s.read_aborts, 1, "one upgrade failure is one abort: {s}");
    assert_eq!(s.abort_retry_exhausted, 1, "{s}");
    assert_eq!(s.abort_word_changed_at_exit, 0, "double-booked abort: {s}");
    assert_eq!(s.fallback_acquires, 1, "{s}");
    assert_eq!(s.read_aborts, s.abort_reason_sum(), "{s}");
    assert_eq!(s.abort_retry_exhausted, s.fallback_acquires, "{s}");
}
