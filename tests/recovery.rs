//! Cross-crate recovery scenarios (§3.3): starvation fallback under a
//! hostile writer, asynchronous-event loop breaking, and genuine-fault
//! propagation through the collection layer.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use solero::{Checkpoint, Fault, SoleroConfig, SoleroLock};
use solero_collections::JHashMap;
use solero_heap::{ClassId, Heap};
use solero_runtime::events::EventSource;

/// A writer that never stops mutating cannot starve readers: the
/// fallback acquires the lock after `fallback_threshold` failures.
#[test]
fn readers_complete_under_relentless_writer() {
    let lock = Arc::new(SoleroLock::new());
    let value = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        {
            let (lock, value, stop) = (Arc::clone(&lock), Arc::clone(&value), Arc::clone(&stop));
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    lock.write(|| {
                        value.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }
        // Every reader must finish despite the writer; the driver
        // guarantees progress via fallback.
        for _ in 0..2 {
            let (lock, value) = (Arc::clone(&lock), Arc::clone(&value));
            s.spawn(move || {
                for _ in 0..20_000 {
                    lock.read_only(|_| Ok::<_, Fault>(value.load(Ordering::Acquire)))
                        .unwrap();
                }
            });
        }
        std::thread::sleep(Duration::from_millis(100));
        stop.store(true, Ordering::Relaxed);
    });
    let st = lock.stats().snapshot();
    assert_eq!(st.read_enters, 40_000);
    // Every section completed (the loops joined); each finished through
    // exactly one of: successful elision, fallback acquisition, or a
    // held slow entry (spinning escalated to the monitor).
    assert!(st.elision_success > 0, "some reads must elide: {st}");
    assert!(
        st.elision_success + st.fallback_acquires <= 40_000,
        "over-counted completions: {st}"
    );
}

/// An "infinite loop" induced by stale speculation is broken by the
/// asynchronous event ticker even with the deterministic check-point
/// period disabled — the paper's GC-event mechanism.
#[test]
fn async_ticker_breaks_stuck_speculation() {
    let lock = Arc::new(SoleroLock::with_config(SoleroConfig {
        checkpoint_period: 0, // events only
        ..SoleroConfig::default()
    }));
    let _ticker = EventSource::global().start_ticker(Duration::from_millis(2));
    let l2 = Arc::clone(&lock);
    let mut attempt = 0;
    let got = lock
        .read_only(|session| {
            attempt += 1;
            if attempt == 1 {
                // Invalidate ourselves, then "loop forever" — only the
                // ticker-driven validation can break us out.
                std::thread::scope(|sc| {
                    sc.spawn(|| l2.write(|| {}));
                });
                loop {
                    session.checkpoint()?;
                    std::hint::spin_loop();
                }
            }
            Ok::<_, Fault>(attempt)
        })
        .unwrap();
    assert_eq!(got, 2, "re-executed after the event fired");
    assert!(lock.stats().snapshot().async_validations > 0);
}

/// A genuine fault (real program bug) inside a read-only section is not
/// retried: the lock value was unchanged, so the fault propagates like
/// the exception it models.
#[test]
fn genuine_collection_fault_propagates() {
    const BROKEN: ClassId = ClassId::new(99);
    let heap = Heap::new(1 << 16);
    let map = JHashMap::new(&heap, 8).unwrap();
    map.put(&heap, 1, 10).unwrap();
    // Corrupt the map root so `get` dereferences a wrong-class object:
    // model a real heap-corruption bug, not a speculation artifact.
    let bogus = heap.alloc(BROKEN, 1).unwrap();
    heap.store_ref(map.root(), 0, bogus).unwrap();

    let lock = SoleroLock::new();
    let mut runs = 0;
    let r = lock.read_only(|ck| {
        runs += 1;
        map.get(&heap, 1, ck)
    });
    assert!(
        matches!(r, Err(Fault::ClassCast { .. }) | Err(Fault::StaleHandle { .. })),
        "corruption must surface: {r:?}"
    );
    assert_eq!(runs, 1, "a consistent fault must not be retried");
}

/// Null-pointer faults under a *held* lock (fallback execution) also
/// propagate — held sections cannot blame speculation.
#[test]
fn fault_under_fallback_propagates() {
    let lock = Arc::new(SoleroLock::new());
    let l2 = Arc::clone(&lock);
    let mut attempt = 0;
    let r: Result<(), Fault> = lock.read_only(|session| {
        attempt += 1;
        if attempt == 1 {
            // Force a validation failure so attempt 2 runs under the
            // lock.
            std::thread::scope(|sc| {
                sc.spawn(|| l2.write(|| {}));
            });
            session.validate_now()?;
            unreachable!("validation must fail");
        }
        // Under the held lock: a genuine null dereference.
        Err(Fault::NullPointer)
    });
    assert_eq!(r, Err(Fault::NullPointer));
    assert_eq!(attempt, 2);
    assert!(!lock.is_locked(), "fallback lock released on propagation");
}

/// Recycled heap storage produces class-cast/stale faults for stale
/// speculative readers, and the recovery machinery absorbs all of them.
#[test]
fn recycling_faults_are_recovered() {
    let heap = Arc::new(Heap::new(1 << 20));
    let map = JHashMap::new(&heap, 8).unwrap();
    for k in 0..64 {
        map.put(&heap, k, k).unwrap();
    }
    let lock = Arc::new(SoleroLock::new());
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        {
            let (heap, lock, stop) = (Arc::clone(&heap), Arc::clone(&lock), Arc::clone(&stop));
            s.spawn(move || {
                // Churn: remove + reinsert constantly recycles nodes.
                let mut k = 0i64;
                while !stop.load(Ordering::Relaxed) {
                    k = (k + 1) % 64;
                    lock.write(|| {
                        map.remove(&heap, k).unwrap();
                        map.put(&heap, k, k).unwrap();
                    });
                }
            });
        }
        for _ in 0..2 {
            let (heap, lock) = (Arc::clone(&heap), Arc::clone(&lock));
            s.spawn(move || {
                for i in 0..30_000i64 {
                    let k = i % 64;
                    let v = lock.read_only(|ck| map.get(&heap, k, ck)).unwrap();
                    if let Some(v) = v {
                        assert_eq!(v, k, "validated read must be coherent");
                    }
                }
            });
        }
        std::thread::sleep(Duration::from_millis(150));
        stop.store(true, Ordering::Relaxed);
    });
    let st = lock.stats().snapshot();
    // The churn makes some speculative faults very likely; all were
    // recovered (no reader panicked or saw a wrong value).
    assert_eq!(st.read_enters, 60_000);
    assert!(st.elision_success > 0, "{st}");
    assert!(st.elision_success + st.fallback_acquires <= 60_000, "{st}");
}
