//! Concurrent elision stress over the shadow-heap maps (satellite of
//! the hermetic-testkit issue): writers continuously mutate a
//! `JHashMap`/`JTreeMap` under [`SoleroStrategy`] write sections while
//! readers run elided read-only sections. Every value a reader
//! *returns* must be one the key actually held — the validation
//! protocol must filter every torn observation out.
//!
//! The whole run is driven by [`solero_testkit::stress`]: named
//! barrier-phased workers, per-worker deterministic generator streams,
//! and a watchdog that turns a protocol deadlock into a test failure
//! instead of a hang. The same fixed root-seed matrix is replayed on
//! every run (`SOLERO_TESTKIT_SEED` overrides it).

use std::sync::atomic::{AtomicU64, Ordering};

use solero::{Checkpoint, SoleroStrategy, SyncStrategy};
use solero_collections::{JHashMap, JTreeMap};
use solero_heap::Heap;
use solero_testkit::{seed_matrix, seed_override, stress, StressConfig};

/// Invariant: key `k` only ever maps to `k * MULT`.
const MULT: i64 = 1_000_003;
/// Small key space maximizes writer/reader collisions.
const KEYS: i64 = 256;
/// Operations per worker per round.
const OPS: usize = 4_000;
/// Workers 0..WRITERS mutate; the rest read speculatively.
const WRITERS: usize = 2;
const THREADS: usize = 6;
const ROUNDS: usize = 3;

fn run_matrix(name: &str, root: u64, mut round: impl FnMut(&str, u64)) {
    for (i, seed) in seed_matrix(seed_override(root), 3).into_iter().enumerate() {
        round(&format!("{name}-m{i}"), seed);
    }
}

fn stress_map<G, P>(name: &str, seed: u64, get: G, put: P, remove: impl Fn(i64) + Sync)
where
    G: Fn(i64, &mut dyn Checkpoint) -> Result<Option<i64>, solero::Fault> + Sync,
    P: Fn(i64, i64) + Sync,
{
    let strat = SoleroStrategy::new();
    let validated_reads = AtomicU64::new(0);
    stress(
        name,
        &StressConfig::new(THREADS, ROUNDS, seed),
        |w| {
            if w.id < WRITERS {
                for _ in 0..OPS {
                    let k = w.rng.gen_range(0..KEYS);
                    if w.rng.gen_bool(0.25) {
                        strat.write_section(|| remove(k));
                    } else {
                        strat.write_section(|| put(k, k * MULT));
                    }
                }
            } else {
                for _ in 0..OPS {
                    let k = w.rng.gen_range(0..KEYS);
                    // Faults must flow OUT of the section: speculation
                    // artifacts (stale handles, torn structure) are the
                    // strategy's to triage and retry, and only genuine
                    // faults may surface here.
                    let got = strat
                        .read_section(|ck| get(k, ck as &mut dyn Checkpoint))
                        .expect("no genuine faults in a pure read");
                    if let Some(v) = got {
                        assert_eq!(v, k * MULT, "validated read of key {k} returned a torn value");
                    }
                    validated_reads.fetch_add(1, Ordering::Relaxed);
                }
            }
        },
    );
    let snap = strat.snapshot();
    let expected_reads = ((THREADS - WRITERS) * ROUNDS * OPS) as u64;
    assert_eq!(
        validated_reads.load(Ordering::Relaxed),
        expected_reads,
        "every reader iteration must complete (starvation-freedom)"
    );
    assert_eq!(snap.read_enters, expected_reads);
    assert!(
        snap.elision_success > 0,
        "contended readers must still elide sometimes: {snap}"
    );
    // Any speculative failure must have been recovered from, not leaked;
    // reaching this point with the value invariant intact is the proof.
}

#[test]
fn hashmap_speculative_readers_observe_only_real_values() {
    run_matrix("elide-hash", 0x5EED_AA01, |name, seed| {
        let heap = Heap::new(1 << 22);
        let map = JHashMap::new(&heap, 64).unwrap();
        stress_map(
            name,
            seed,
            |k, ck| map.get(&heap, k, ck),
            |k, v| {
                map.put(&heap, k, v).unwrap();
            },
            |k| {
                map.remove(&heap, k).unwrap();
            },
        );
    });
}

#[test]
fn treemap_speculative_readers_observe_only_real_values() {
    run_matrix("elide-tree", 0x5EED_AA02, |name, seed| {
        let heap = Heap::new(1 << 22);
        let map = JTreeMap::new(&heap).unwrap();
        stress_map(
            name,
            seed,
            |k, ck| map.get(&heap, k, ck),
            |k, v| {
                map.put(&heap, k, v).unwrap();
            },
            |k| {
                map.remove(&heap, k).unwrap();
            },
        );
    });
}
