//! High-thread-count stress over [`BravoLock`]: seven readers hammer
//! the fast path while one writer periodically revokes the bias, so the
//! whole lifecycle — elide, publish, revoke, slow-path streak, re-bias —
//! cycles continuously under real preemption.
//!
//! Two things are pinned:
//!
//! * **exclusion** — the writer updates a pair of words inside
//!   `write()`; every reader snapshot under `read()` must be untorn,
//!   whichever path (fast or slow) admitted it;
//! * **the taxonomy balances at teardown** — every read is exactly fast
//!   or slow, re-biases never outnumber revocations, no visible-readers
//!   slot is left published, and the fast path carried at least half
//!   the reads (on this workload the bias is revoked only a handful of
//!   times per round, so a healthy lock elides the vast majority).
//!
//! Driven by [`solero_testkit::stress`] over a fixed root-seed matrix;
//! `SOLERO_TESTKIT_SEED` replays any run.

use std::sync::atomic::{AtomicU64, Ordering};

use solero_rwlock::{BravoLock, RawRwLock};
use solero_testkit::{seed_matrix, seed_override, stress, StressConfig};

const THREADS: usize = 8;
const ROUNDS: usize = 5;
/// Reads per reader per round.
const OPS: usize = 2_000;
/// Bias revocations the writer forces per round.
const WRITES_PER_ROUND: usize = 2;

#[test]
fn bravo_fast_path_carries_a_contended_read_storm() {
    for (i, seed) in seed_matrix(seed_override(0x5EED_B7A0), 3).into_iter().enumerate() {
        let lock = BravoLock::new();
        let a = AtomicU64::new(0);
        let b = AtomicU64::new(0);

        stress(
            &format!("bravo-scale-m{i}"),
            &StressConfig::new(THREADS, ROUNDS, seed),
            |w| {
                if w.id == 0 {
                    // The writer: a couple of revocations per round,
                    // spaced so readers re-earn the bias in between.
                    for _ in 0..WRITES_PER_ROUND {
                        let g = lock.write();
                        let v = a.load(Ordering::Relaxed) + 1;
                        a.store(v, Ordering::Relaxed);
                        b.store(v, Ordering::Relaxed);
                        drop(g);
                        for _ in 0..w.rng.gen_range(200..400) {
                            std::hint::spin_loop();
                        }
                    }
                } else {
                    for _ in 0..OPS {
                        let g = lock.read();
                        let (ra, rb) = (a.load(Ordering::Relaxed), b.load(Ordering::Relaxed));
                        drop(g);
                        assert_eq!(ra, rb, "reader saw a torn write pair");
                    }
                }
            },
        );

        let expected_reads = ((THREADS - 1) * ROUNDS * OPS) as u64;
        let expected_writes = (ROUNDS * WRITES_PER_ROUND) as u64;
        let snap = lock.stats().snapshot();
        assert_eq!(snap.read_enters, expected_reads, "seed {seed:#x}: {snap}");
        assert_eq!(snap.write_enters, expected_writes, "seed {seed:#x}: {snap}");
        assert_eq!(
            snap.read_enters,
            snap.elision_success + snap.read_slow_enters,
            "seed {seed:#x}: every read is exactly fast or slow: {snap}"
        );
        assert!(
            snap.bias_revocations <= expected_writes,
            "seed {seed:#x}: more revocations than writes: {snap}"
        );
        assert!(
            snap.bias_rebiases <= snap.bias_revocations,
            "seed {seed:#x}: bias re-earned more often than lost: {snap}"
        );
        let fast_rate = snap.elision_success as f64 / snap.read_enters as f64;
        assert!(
            fast_rate >= 0.5,
            "seed {seed:#x}: fast path carried only {:.1}% of {} reads: {snap}",
            fast_rate * 100.0,
            snap.read_enters
        );
        assert_eq!(
            lock.published_readers(),
            0,
            "seed {seed:#x}: visible-readers slot leaked"
        );
        assert_eq!(
            a.load(Ordering::Relaxed),
            expected_writes,
            "seed {seed:#x}: writer updates lost"
        );
    }
}
