//! Bi-modality × elision: the paper's requirement that SOLERO "supports
//! the bidirectional switching of the lock mode the same as the
//! conventional lock implementation, though it can elide locks only in
//! the thin mode", and that the displaced counter makes inflate/deflate
//! cycles visible to speculative readers.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use solero::{Fault, SoleroConfig, SoleroLock};
use solero_runtime::spin::SpinConfig;
use solero_runtime::thread::ThreadId;

fn contended_lock() -> Arc<SoleroLock> {
    Arc::new(SoleroLock::with_config(SoleroConfig {
        spin: SpinConfig::immediate(), // escalate to the monitor fast
        ..SoleroConfig::default()
    }))
}

/// Readers arriving while the lock is fat take the monitor (no
/// elision), and resume eliding after deflation.
#[test]
fn readers_work_across_inflation_and_deflation() {
    let lock = contended_lock();
    let data = Arc::new(AtomicU64::new(7));

    // Inflate by holding the lock while a contender arrives.
    let tid = ThreadId::current();
    let t = lock.enter_write(tid);
    let l2 = Arc::clone(&lock);
    let contender = std::thread::spawn(move || {
        l2.write(|| {});
    });
    std::thread::sleep(Duration::from_millis(30));

    // A reader while the lock is held+contended must go the slow route
    // and still return correct data once the lock is free.
    let l3 = Arc::clone(&lock);
    let d3 = Arc::clone(&data);
    let reader = std::thread::spawn(move || {
        l3.read_only(|_| Ok::<_, Fault>(d3.load(Ordering::Acquire)))
            .unwrap()
    });
    std::thread::sleep(Duration::from_millis(10));
    data.store(8, Ordering::Release);
    lock.exit_write(tid, t);
    contender.join().unwrap();
    assert_eq!(reader.join().unwrap(), 8);

    // Once quiescent, a write/read cycle deflates and elides again.
    lock.write(|| {});
    assert!(!lock.is_inflated(), "deflated when uncontended");
    let before = lock.stats().snapshot().elision_success;
    lock.read_only(|_| Ok::<_, Fault>(())).unwrap();
    assert_eq!(lock.stats().snapshot().elision_success, before + 1);
}

/// The displaced counter: a speculative reader that captured the word
/// before an inflate/deflate cycle must fail validation afterwards —
/// deflation never republishes a value a reader may hold.
#[test]
fn inflate_deflate_cycle_changes_the_word() {
    let lock = contended_lock();
    let captured = lock.raw_word();
    assert!(captured.is_elidable());

    // Drive one full inflate/deflate cycle with real contention.
    let tid = ThreadId::current();
    let t = lock.enter_write(tid);
    let l2 = Arc::clone(&lock);
    let h = std::thread::spawn(move || {
        l2.write(|| {});
    });
    std::thread::sleep(Duration::from_millis(30));
    lock.exit_write(tid, t);
    h.join().unwrap();
    lock.write(|| {}); // final uncontended cycle forces deflation

    let after = lock.raw_word();
    assert!(after.is_elidable(), "thin again: {after}");
    assert_ne!(
        after, captured,
        "displaced counter must make the cycle visible to readers"
    );
    assert!(
        after.counter().unwrap() > captured.counter().unwrap(),
        "counter monotone across modes"
    );
}

/// Heavy mixed traffic cycling thin↔fat never breaks reader coherence.
#[test]
fn mode_cycling_stress() {
    let lock = contended_lock();
    let a = Arc::new(AtomicU64::new(0));
    let b = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        for _ in 0..3 {
            let (lock, a, b, stop) = (
                Arc::clone(&lock),
                Arc::clone(&a),
                Arc::clone(&b),
                Arc::clone(&stop),
            );
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    lock.write(|| {
                        let v = a.load(Ordering::Relaxed) + 1;
                        a.store(v, Ordering::Release);
                        b.store(v, Ordering::Release);
                    });
                }
            });
        }
        for _ in 0..3 {
            let (lock, a, b) = (Arc::clone(&lock), Arc::clone(&a), Arc::clone(&b));
            s.spawn(move || {
                for _ in 0..10_000 {
                    let (x, y) = lock
                        .read_only(|_| {
                            Ok::<_, Fault>((a.load(Ordering::Acquire), b.load(Ordering::Acquire)))
                        })
                        .unwrap();
                    assert_eq!(x, y, "torn pair under mode cycling");
                }
            });
        }
        std::thread::sleep(Duration::from_millis(200));
        stop.store(true, Ordering::Relaxed);
    });
    let st = lock.stats().snapshot();
    assert!(st.write_enters > 0 && st.read_enters == 30_000, "{st}");
}
