#!/usr/bin/env python3
"""Appends the measured tables from results/full_run.log to EXPERIMENTS.md.

The reproduce binary already prints aligned text tables; this script
converts that log into fenced blocks under the insertion marker so
EXPERIMENTS.md carries the exact measured output of the recorded run.
"""

import pathlib
import re

ROOT = pathlib.Path(__file__).resolve().parent.parent
LOG = ROOT / "results" / "full_run.log"
DOC = ROOT / "EXPERIMENTS.md"
MARK = "<!-- MEASURED RESULTS INSERTED BELOW -->"

COMMENTARY = {
    "Table 1": (
        "Read-only ratios match the paper's column by construction "
        "(Empty/HashMap-0%/TreeMap-0% = 100%, 5%-writes = 95%, jbb in "
        "the low-50s–60s band vs the paper's 53.6%, DaCapo profiles at "
        "0.0/3.7/0.3/11.4%). Frequency ordering (Empty > HashMap > jbb "
        "≈ TreeMap; tomcat highest of the DaCapo set, tradebeans "
        "lowest) also matches; absolute M locks/s are host-specific."
    ),
    "Figure 10": (
        "Ablation ordering as in the paper: WeakBarrier-SOLERO < Lock "
        "< SOLERO < Unelided-SOLERO < RWLock. The paper's headline "
        "(SOLERO at ~0.5× Lock) relies on POWER6's expensive atomics; "
        "on x86 the uncontended CAS is as cheap as the Store→Load "
        "fence, so strong-fence SOLERO pays ~1.2–1.4× single-thread "
        "while the fence-free ablation beats Lock — i.e., the entire "
        "single-thread gap is the §3.4 memory-ordering cost, which the "
        "paper itself measures at 5–20%."
    ),
    "Figure 11": (
        "RWLock lands at roughly half of Lock's throughput on the "
        "HashMap benchmarks (paper: 'substantial' underperformance — "
        "non-inlined paths, state indirection, per-thread hold "
        "counters). SOLERO sits within ~±15% of Lock single-thread on "
        "this host for the reasons above; the paper's +4–8% is an "
        "architecture-dependent outcome, not an algorithmic one."
    ),
    "Figure 12": (
        "The paper's multi-thread story survives the 1-core host in "
        "relative form: at the highest thread count Lock collapses "
        "(preempted holders stall everyone) while SOLERO holds near "
        "its single-thread rate — a multiple over Lock, as in the "
        "paper's 16-thread points. With 5% writes SOLERO dips as "
        "threads grow (paper: 'drops the performance when the number "
        "of threads is more than two') but stays on top; fine-grained "
        "sharding lifts Lock as the paper describes, with SOLERO "
        "matching or beating it at every point."
    ),
    "Figure 13": (
        "Same orderings as Figure 12 for the red-black tree: SOLERO "
        "degrades most gracefully with thread count; RWLock's shared "
        "reader counter keeps it at the bottom."
    ),
    "Figure 14": (
        "Per-warehouse isolation means neither implementation "
        "contends (the paper: 'minimal lock contention'); both stay "
        "~flat on one core and SOLERO's elided reads keep it at or "
        "above Lock throughout, mirroring the paper's 'single-thread "
        "advantage carried over proportionally'."
    ),
    "Figure 15": (
        "The recovery machinery is exercised and verified by the test "
        "suite (validation failures, fault retries, fallback under a "
        "relentless writer); the *rates* here are far below the "
        "paper's 23–35% because on one core a reader is only "
        "invalidated when the scheduler interleaves a writer into its "
        "microsecond-long section. On a multi-core host the same "
        "harness reproduces the growth-with-threads shape."
    ),
    "Figure 16": (
        "With read-only ratios of 0–11.4% there is almost nothing to "
        "elide; SOLERO tracks Lock within noise of 1.0×, matching the "
        "paper's <1% deltas — the 'negligible overhead when "
        "inapplicable' claim."
    ),
    "Ablation: fallback": (
        "The §3.2 knob. With near-zero failure rates on this host the "
        "threshold is inert (all columns within noise); under real "
        "contention a higher threshold trades repeated speculative "
        "re-execution against fallback lock traffic."
    ),
    "Ablation: check-point": (
        "Validation density is a pure read-path tax here: validating "
        "at every poll costs measurably more than the default, and "
        "'events only' is cheapest — consistent with the paper's "
        "choice to piggyback on existing asynchronous events instead "
        "of frequent deterministic checks."
    ),
    "Latency": (
        "Not in the paper. The p99.9 column shows what elision buys "
        "beyond throughput: SOLERO readers can neither block nor be "
        "blocked, so the tail stays flat while Lock/RWLock pay "
        "millisecond-class stalls when a holder is descheduled."
    ),
}


def main() -> None:
    log = LOG.read_text()
    doc = DOC.read_text()
    # Drop anything previously inserted.
    doc = doc.split(MARK)[0] + MARK + "\n"
    # Split the log into titled tables.
    blocks = re.split(r"\n(?=== )", log)
    out = []
    for b in blocks:
        m = re.match(r"== (.*?) ==\n", b)
        if not m:
            continue
        title = m.group(1)
        body = b.strip()
        comment = next(
            (c for key, c in COMMENTARY.items() if title.startswith(key)), None
        )
        out.append(f"\n### {title}\n\n```text\n{body}\n```\n")
        if comment:
            out.append(f"\n{comment}\n")
    DOC.write_text(doc + "".join(out))
    print(f"inserted {len(out)} blocks into {DOC}")


if __name__ == "__main__":
    main()
