#!/usr/bin/env bash
# Canonical tier-1 entry point: hermetic build + test, fully offline.
#
# The workspace has zero registry dependencies (solero-testkit replaces
# rand/proptest/criterion/crossbeam/parking_lot in-tree), so everything
# below must succeed on a machine with no crates.io access at all.
# `--offline` is not a convenience here — it is the property under test.
#
# The stress/property substrate is deterministic: the pinned seed list
# replays the exact same schedules and generated cases on every run, and
# any failure prints the SOLERO_TESTKIT_SEED needed to reproduce it.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: offline release build =="
cargo build --release --offline --workspace

echo "== tier-1: offline test suite (default seeds) =="
cargo test -q --offline --workspace

# The recursion-bound contracts in solero-runtime::word are real
# assertions, not debug_asserts; running the suite on the release
# profile proves they still fire with debug assertions compiled out.
echo "== tier-1: release-profile runtime asserts (recursion bounds) =="
cargo test -q --offline --release -p solero-runtime --lib

echo "== tier-1: bench targets compile behind the criterion feature =="
cargo build -q --offline -p solero-bench --benches --features criterion

echo "== tier-1: obs suite with tracing enabled =="
cargo test -q --offline -p solero-obs --features trace

echo "== tier-1: obs smoke (trace, export, schema check) =="
cargo build -q --offline -p solero-bench --features obs-trace \
    --bin obs_smoke --bin obs_check
rm -f results/obs.jsonl
./target/debug/obs_smoke > /dev/null
./target/debug/obs_check results/obs.jsonl

# Model-check the elision protocol (crates/mc). The instrumented
# runtime is selected by a cfg flag rather than a cargo feature so
# feature unification can never leak the scheduler into normal builds;
# the separate target dir keeps the two build graphs' caches apart.
#
# Budgets: 2-thread protocol scenarios are explored exhaustively
# (bounded preemption); the 3-thread collections scenarios (hashmap
# rehash, treemap rotation vs. elided readers) are drained under
# dynamic partial-order reduction, and tests/dpor_reduction.rs prints
# the before/after explored-executions count for the same scenarios
# under plain DFS. Both accept overrides — SOLERO_MC_SEED re-seeds the
# sampling mode and SOLERO_MC_BUDGET caps executions per scenario — so
# a failing schedule printed in CI can be replayed locally
# byte-for-byte. This run is uncapped: completeness assertions are
# live.
echo "== tier-1: model checker (exhaustive 2-thread, DPOR 3-thread) =="
RUSTFLAGS="--cfg solero_mc" CARGO_TARGET_DIR=target/mc \
    cargo test -q --offline -p solero-sync -p solero-mc

# The mutation-kill harness flips each test-only protocol weakening
# (skip the exit re-read, demote it to Relaxed, stall the release
# counter) and requires the checker to report a violating schedule and
# replay it deterministically; the test fails if any mutant survives.
echo "== tier-1: mc mutation-kill (each weakened protocol must fail) =="
RUSTFLAGS="--cfg solero_mc" CARGO_TARGET_DIR=target/mc \
    cargo test -q --offline -p solero-mc --test mutation_kill

# Budgeted DPOR collections pass: the same rehash/rotation scenarios,
# re-run under a pinned seed with SOLERO_MC_BUDGET capping every
# search. This proves the budget knob keeps the step inside a fixed
# CI cost even if a scenario's state space regresses — the uncapped
# completeness run already happened in the main mc step above.
echo "== tier-1: mc collections under DPOR (budgeted, pinned seed) =="
SOLERO_MC_SEED=0x5EED0004 SOLERO_MC_BUDGET=6000 RUST_BACKTRACE=0 \
    RUSTFLAGS="--cfg solero_mc" CARGO_TARGET_DIR=target/mc \
    cargo test -q --offline -p solero-mc \
    --test collections_mc --test dpor_reduction \
    -- --nocapture --test-threads=1 \
    | grep -E "mc\[|test result"

# Budgeted weak-memory pass: the SB/MP litmus battery plus the §3.4
# barrier-table and WEAK_EXIT_LOAD kills, re-run with SOLERO_MC_BUDGET
# capping every search. The cap keeps the step inside a fixed CI cost
# (the clean-baseline searches are the expensive part, ~50k executions
# uncapped) while still sitting above both kills' discovery points
# (the weak-barrier violation surfaces within ~100 executions, the
# weak-exit-load one within ~16k), so the grep still proves the
# mutants die and replay. The uncapped completeness run already
# happened in the main mc step above.
echo "== tier-1: mc weak-memory litmus + barrier kill (budgeted) =="
SOLERO_MC_BUDGET=20000 RUST_BACKTRACE=0 \
    RUSTFLAGS="--cfg solero_mc" CARGO_TARGET_DIR=target/mc \
    cargo test -q --offline -p solero-mc \
    --test weak_memory --test barrier_kill \
    -- --nocapture --test-threads=1 \
    | grep -E "mc\[|killed|test result"

# Budgeted BRAVO revocation pass: the publish/revoke handshake drained
# three ways (exhaustive DFS, TSO store buffers, DPOR re-bias cycle)
# with SOLERO_MC_BUDGET bounding each search. The uncapped completeness
# run already happened in the main mc step above; this pins the budget
# knob and the replay path for the newest protocol the same way the
# collections and weak-memory steps do.
echo "== tier-1: mc bravo bias revocation (budgeted) =="
SOLERO_MC_SEED=0x5EEDB7A0 SOLERO_MC_BUDGET=20000 RUST_BACKTRACE=0 \
    RUSTFLAGS="--cfg solero_mc" CARGO_TARGET_DIR=target/mc \
    cargo test -q --offline -p solero-mc \
    --test bravo_mc \
    -- --nocapture --test-threads=1 \
    | grep -E "mc\[|test result"

# Budgeted store snapshot pass: the MVCC store's COW-install/epoch-bump
# handshake drained three ways (exhaustive DFS, TSO store buffers, DPOR
# with a checkpointer in the mix) with SOLERO_MC_BUDGET bounding each
# search. The uncapped completeness run already happened in the main mc
# step above; this pins the budget knob and the replay path for the
# store protocol the same way the bravo step does.
echo "== tier-1: mc store snapshot handshake (budgeted) =="
SOLERO_MC_SEED=0x5EED5705 SOLERO_MC_BUDGET=20000 RUST_BACKTRACE=0 \
    RUSTFLAGS="--cfg solero_mc" CARGO_TARGET_DIR=target/mc \
    cargo test -q --offline -p solero-mc \
    --test store_mc \
    -- --nocapture --test-threads=1 \
    | grep -E "mc\[|test result"

# Budgeted inline-seqlock pass: the writer-bump/reader-validate
# handshake drained three ways (exhaustive DFS, DPOR with two readers,
# DPOR under TSO store buffers) plus both exit-validation mutation
# kills (their own binary — the mutation switch is process-global),
# with SOLERO_MC_BUDGET bounding each search. The cap sits above the
# SC kill's discovery point (~10k executions) but below the
# weak-memory one (~160k), so the SKIP_EXIT_REREAD kill is re-proven
# here and the WEAK_EXIT_LOAD one prints its budget-capped skip; the
# uncapped completeness run already happened in the main mc step
# above.
echo "== tier-1: mc inline seqlock handshake + kills (budgeted) =="
SOLERO_MC_SEED=0x5EED5E01 SOLERO_MC_BUDGET=20000 RUST_BACKTRACE=0 \
    RUSTFLAGS="--cfg solero_mc" CARGO_TARGET_DIR=target/mc \
    cargo test -q --offline -p solero-mc \
    --test seqlock_mc --test seqlock_kill \
    -- --nocapture --test-threads=1 \
    | grep -E "mc\[|killed|test result"

# Budgeted compact-monitor pass: the compact word's inflate → deflate →
# re-inflate handoff drained three ways (exhaustive DFS under an elided
# reader, DPOR across a re-inflation cycle, DPOR under TSO store
# buffers aimed at the deflater's displaced-word store) plus the exact
# in-word counter law, with SOLERO_MC_BUDGET bounding each search. The
# uncapped completeness run already happened in the main mc step above;
# this pins the budget knob and the replay path for the newest protocol
# the same way the seqlock and store steps do.
echo "== tier-1: mc compact monitor handoff (budgeted) =="
SOLERO_MC_SEED=0x5EEDC03A SOLERO_MC_BUDGET=20000 RUST_BACKTRACE=0 \
    RUSTFLAGS="--cfg solero_mc" CARGO_TARGET_DIR=target/mc \
    cargo test -q --offline -p solero-mc \
    --test compact_mc \
    -- --nocapture --test-threads=1 \
    | grep -E "mc\[|test result"

# Replay the concurrency stress and property suites under a pinned seed
# matrix: different roots exercise different schedules/cases, and every
# one of them is reproducible by exporting the printed seed.
PINNED_SEEDS=(0x5EED0001 0xDECAFBAD 0x0DDBA11)
for seed in "${PINNED_SEEDS[@]}"; do
    echo "== stress/property replay: SOLERO_TESTKIT_SEED=${seed} =="
    SOLERO_TESTKIT_SEED="${seed}" cargo test -q --offline \
        --test read_elision_stress \
        --test collections_contention_stress \
        --test fallback_starvation \
        --test adaptive_policy_stress \
        --test bravo_reader_scaling \
        --test store_snapshot_stress \
        --test fallback_storm_stress
    SOLERO_TESTKIT_SEED="${seed}" cargo test -q --offline \
        -p solero \
        -p solero-runtime \
        -p solero-collections \
        -p solero-jit \
        -p solero-rwlock \
        -p solero-workloads \
        --test lock_state_props \
        --test zipf_props \
        --test word_props \
        --test model_based \
        --test random_programs \
        --test adaptive_policy_props \
        --test contention_props
done

# The adaptive trajectory bench must keep producing a well-formed
# document (the full-size run is checked in as BENCH_adaptive.json; the
# quick run here proves the pipeline, not the numbers).
echo "== tier-1: adaptive trajectory smoke (quick) =="
cargo run -q --offline -p solero-bench --bin bench_adaptive -- \
    --quick --out results/BENCH_adaptive_quick.json 2> /dev/null
test -s results/BENCH_adaptive_quick.json

# Same deal for the BRAVO reader-throughput sweep (full-size run is
# checked in as BENCH_bravo.json): the quick run proves the bin still
# sweeps all four thread counts and emits a well-formed document.
echo "== tier-1: bravo reader sweep smoke (quick) =="
cargo run -q --offline -p solero-bench --bin bench_bravo -- \
    --quick --out results/BENCH_bravo_quick.json 2> /dev/null
test -s results/BENCH_bravo_quick.json

# And the open-loop store sweep (full-size run is checked in as
# BENCH_store.json): the quick run proves the bin still drives the whole
# fleet through the Zipfian open loop and emits a well-formed document.
echo "== tier-1: store open-loop sweep smoke (quick) =="
cargo run -q --offline -p solero-bench --bin bench_store -- \
    --quick --out results/BENCH_store_quick.json 2> /dev/null
test -s results/BENCH_store_quick.json

# And the inline-seqlock deltas (full-size run is checked in as
# BENCH_seqlock.json): the quick run proves the bin still sweeps the
# inline/heap read cells and both storm policies and emits a
# well-formed document.
echo "== tier-1: seqlock inline + fallback storm smoke (quick) =="
cargo run -q --offline -p solero-bench --bin bench_seqlock -- \
    --quick --out results/BENCH_seqlock_quick.json 2> /dev/null
test -s results/BENCH_seqlock_quick.json

# Compact-monitor footprint smoke (full-size run is checked in as
# BENCH_compact.json): the quick run proves the 8-byte claim end to
# end — the bin itself fails if per-object lock overhead exceeds the
# one-word budget or the monitor table is non-empty after the
# quiescent drain.
echo "== tier-1: compact monitor footprint smoke (quick) =="
cargo run -q --offline -p solero-bench --bin bench_compact -- \
    --quick --out results/BENCH_compact_quick.json 2> /dev/null
test -s results/BENCH_compact_quick.json

echo "== tier-1 green =="
