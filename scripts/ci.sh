#!/usr/bin/env bash
# Canonical tier-1 entry point: hermetic build + test, fully offline.
#
# The workspace has zero registry dependencies (solero-testkit replaces
# rand/proptest/criterion/crossbeam/parking_lot in-tree), so everything
# below must succeed on a machine with no crates.io access at all.
# `--offline` is not a convenience here — it is the property under test.
#
# The stress/property substrate is deterministic: the pinned seed list
# replays the exact same schedules and generated cases on every run, and
# any failure prints the SOLERO_TESTKIT_SEED needed to reproduce it.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: offline release build =="
cargo build --release --offline --workspace

echo "== tier-1: offline test suite (default seeds) =="
cargo test -q --offline --workspace

echo "== tier-1: bench targets compile behind the criterion feature =="
cargo build -q --offline -p solero-bench --benches --features criterion

echo "== tier-1: obs suite with tracing enabled =="
cargo test -q --offline -p solero-obs --features trace

echo "== tier-1: obs smoke (trace, export, schema check) =="
cargo build -q --offline -p solero-bench --features obs-trace \
    --bin obs_smoke --bin obs_check
rm -f results/obs.jsonl
./target/debug/obs_smoke > /dev/null
./target/debug/obs_check results/obs.jsonl

# Model-check the elision protocol (crates/mc). The instrumented
# runtime is selected by a cfg flag rather than a cargo feature so
# feature unification can never leak the scheduler into normal builds;
# the separate target dir keeps the two build graphs' caches apart.
#
# Budgets: the 2-thread scenarios are explored exhaustively (bounded
# preemption); 3-thread scenarios use seeded random sampling. Both
# accept overrides — SOLERO_MC_SEED re-seeds the sampling mode and
# SOLERO_MC_BUDGET caps executions per scenario — so a failing schedule
# printed in CI can be replayed locally byte-for-byte.
echo "== tier-1: model checker (exhaustive 2-thread, seeded 3-thread) =="
RUSTFLAGS="--cfg solero_mc" CARGO_TARGET_DIR=target/mc \
    cargo test -q --offline -p solero-sync -p solero-mc

# The mutation-kill harness flips each test-only protocol weakening
# (skip the exit re-read, demote it to Relaxed, stall the release
# counter) and requires the checker to report a violating schedule and
# replay it deterministically; the test fails if any mutant survives.
echo "== tier-1: mc mutation-kill (each weakened protocol must fail) =="
RUSTFLAGS="--cfg solero_mc" CARGO_TARGET_DIR=target/mc \
    cargo test -q --offline -p solero-mc --test mutation_kill

# Replay the concurrency stress and property suites under a pinned seed
# matrix: different roots exercise different schedules/cases, and every
# one of them is reproducible by exporting the printed seed.
PINNED_SEEDS=(0x5EED0001 0xDECAFBAD 0x0DDBA11)
for seed in "${PINNED_SEEDS[@]}"; do
    echo "== stress/property replay: SOLERO_TESTKIT_SEED=${seed} =="
    SOLERO_TESTKIT_SEED="${seed}" cargo test -q --offline \
        --test read_elision_stress \
        --test fallback_starvation
    SOLERO_TESTKIT_SEED="${seed}" cargo test -q --offline \
        -p solero \
        -p solero-runtime \
        -p solero-collections \
        -p solero-jit \
        --test lock_state_props \
        --test word_props \
        --test model_based \
        --test random_programs
done

echo "== tier-1 green =="
